package core

import "time"

// Coordination names a search coordination method. New coordinations
// can be added by extending the dispatch in this file, mirroring the
// extensibility point of Section 4 of the paper.
type Coordination int

const (
	// Sequential explores the tree on a single worker (Listing 2).
	Sequential Coordination = iota
	// DepthBounded spawns every node above d_cutoff (spawn-depth).
	DepthBounded
	// StackStealing splits the search on demand when thieves ask
	// (spawn-stack).
	StackStealing
	// Budget sheds low-depth subtrees every k_budget backtracks
	// (spawn-budget).
	Budget
)

// String returns the coordination's conventional name.
func (c Coordination) String() string {
	switch c {
	case Sequential:
		return "seq"
	case DepthBounded:
		return "depthbounded"
	case StackStealing:
		return "stacksteal"
	case Budget:
		return "budget"
	default:
		return "unknown"
	}
}

// dispatch starts the fabric and runs the chosen coordination. Engines
// are built before the fabric starts so that every locality's pool is
// installed by the time peers can request steals. prio assigns task
// priorities for the ordered scheduling modes; the pool-based
// coordinations consume it, the others ignore it.
func dispatch[S, N any](coord Coordination, space S, gf GenFactory[S, N], cfg Config, m *Metrics, cancel *canceller, vs []visitor[N], root N, fab *fabric[N], prio *prioAssigner[S, N]) {
	switch coord {
	case Sequential:
		fab.start(cancel)
		runSequential(space, gf, cfg, vs[0], cancel, m.shard(0), root)
	case DepthBounded:
		e := newEngine(space, gf, cfg, m, cancel, fab, prio)
		fab.start(cancel)
		runDepthBounded(e, vs, root)
	case Budget:
		e := newEngine(space, gf, cfg, m, cancel, fab, prio)
		fab.start(cancel)
		runBudget(e, vs, root)
	case StackStealing:
		fab.start(cancel)
		runStackStealing(space, gf, cfg, m, cancel, vs, root)
	default:
		panic("core: unknown coordination")
	}
}

// Enum runs an enumeration search under the given coordination,
// returning the monoid fold of the whole tree.
func Enum[S, N, M any](coord Coordination, space S, root N, p EnumProblem[S, N, M], cfg Config) EnumResult[M] {
	cfg = cfg.withDefaults()
	if coord == Sequential {
		cfg.Workers, cfg.Localities = 1, 1
	}
	fab := newLoopbackFabric[N](cfg)
	defer fab.close()
	m := newMetrics(cfg.Workers)
	cancel := newCanceller()
	vs := newEnumVisitors(space, p, m, cfg.Workers)
	prio := newPrioAssigner[S, N](cfg.Order, space, root, nil)
	start := time.Now()
	dispatch(coord, space, p.Gen, cfg, m, cancel, vs, root, fab, prio)
	stats := m.total()
	stats.Elapsed = time.Since(start)
	fab.wireStats(&stats)
	fab.memStats(&stats)
	return EnumResult[M]{Value: combineEnum[S, N, M](p.Monoid, vs), Stats: stats}
}

// Opt runs an optimisation search under the given coordination,
// returning a node maximising the objective.
func Opt[S, N any](coord Coordination, space S, root N, p OptProblem[S, N], cfg Config) OptResult[N] {
	cfg = cfg.withDefaults()
	if coord == Sequential {
		cfg.Workers, cfg.Localities = 1, 1
	}
	fab := newLoopbackFabric[N](cfg)
	defer fab.close()
	m := newMetrics(cfg.Workers)
	cancel := newCanceller()
	inc := newIncumbent[N](fab.trs)
	fab.bounds = inc
	locOf := make([]int, cfg.Workers)
	for w := range locOf {
		locOf[w] = w % cfg.Localities
	}
	vs := newOptVisitors(space, p, inc, m, locOf)
	prio := newPrioAssigner(cfg.Order, space, root, p.Bound)
	start := time.Now()
	dispatch(coord, space, p.Gen, cfg, m, cancel, vs, root, fab, prio)
	stats := m.total()
	stats.Elapsed = time.Since(start)
	stats.Broadcasts = inc.broadcasts()
	fab.wireStats(&stats)
	fab.memStats(&stats)
	node, obj, has := inc.result()
	return OptResult[N]{Best: node, Objective: obj, Found: has, Stats: stats}
}

// Decide runs a decision search under the given coordination, looking
// for any node whose objective reaches p.Target.
func Decide[S, N any](coord Coordination, space S, root N, p DecisionProblem[S, N], cfg Config) DecisionResult[N] {
	cfg = cfg.withDefaults()
	if coord == Sequential {
		cfg.Workers, cfg.Localities = 1, 1
	}
	fab := newLoopbackFabric[N](cfg)
	defer fab.close()
	m := newMetrics(cfg.Workers)
	cancel := newCanceller()
	wit := &witness[N]{}
	vs := newDecisionVisitors(space, p, wit, cancel, m, cfg.Workers)
	prio := newPrioAssigner(cfg.Order, space, root, p.Bound)
	start := time.Now()
	dispatch(coord, space, p.Gen, cfg, m, cancel, vs, root, fab, prio)
	stats := m.total()
	stats.Elapsed = time.Since(start)
	fab.wireStats(&stats)
	fab.memStats(&stats)
	node, obj, found := wit.get()
	return DecisionResult[N]{Witness: node, Objective: obj, Found: found, Stats: stats}
}

// The twelve skeletons of the paper: every combination of the four
// search coordinations and three search types, as named entry points.

// SequentialEnum is the Sequential × Enumeration skeleton.
func SequentialEnum[S, N, M any](space S, root N, p EnumProblem[S, N, M]) EnumResult[M] {
	return Enum(Sequential, space, root, p, Config{})
}

// SequentialOpt is the Sequential × Optimisation skeleton.
func SequentialOpt[S, N any](space S, root N, p OptProblem[S, N]) OptResult[N] {
	return Opt(Sequential, space, root, p, Config{})
}

// SequentialDecision is the Sequential × Decision skeleton.
func SequentialDecision[S, N any](space S, root N, p DecisionProblem[S, N]) DecisionResult[N] {
	return Decide(Sequential, space, root, p, Config{})
}

// DepthBoundedEnum is the Depth-Bounded × Enumeration skeleton.
func DepthBoundedEnum[S, N, M any](space S, root N, p EnumProblem[S, N, M], cfg Config) EnumResult[M] {
	return Enum(DepthBounded, space, root, p, cfg)
}

// DepthBoundedOpt is the Depth-Bounded × Optimisation skeleton.
func DepthBoundedOpt[S, N any](space S, root N, p OptProblem[S, N], cfg Config) OptResult[N] {
	return Opt(DepthBounded, space, root, p, cfg)
}

// DepthBoundedDecision is the Depth-Bounded × Decision skeleton.
func DepthBoundedDecision[S, N any](space S, root N, p DecisionProblem[S, N], cfg Config) DecisionResult[N] {
	return Decide(DepthBounded, space, root, p, cfg)
}

// StackStealEnum is the Stack-Stealing × Enumeration skeleton.
func StackStealEnum[S, N, M any](space S, root N, p EnumProblem[S, N, M], cfg Config) EnumResult[M] {
	return Enum(StackStealing, space, root, p, cfg)
}

// StackStealOpt is the Stack-Stealing × Optimisation skeleton.
func StackStealOpt[S, N any](space S, root N, p OptProblem[S, N], cfg Config) OptResult[N] {
	return Opt(StackStealing, space, root, p, cfg)
}

// StackStealDecision is the Stack-Stealing × Decision skeleton.
func StackStealDecision[S, N any](space S, root N, p DecisionProblem[S, N], cfg Config) DecisionResult[N] {
	return Decide(StackStealing, space, root, p, cfg)
}

// BudgetEnum is the Budget × Enumeration skeleton.
func BudgetEnum[S, N, M any](space S, root N, p EnumProblem[S, N, M], cfg Config) EnumResult[M] {
	return Enum(Budget, space, root, p, cfg)
}

// BudgetOpt is the Budget × Optimisation skeleton.
func BudgetOpt[S, N any](space S, root N, p OptProblem[S, N], cfg Config) OptResult[N] {
	return Opt(Budget, space, root, p, cfg)
}

// BudgetDecision is the Budget × Decision skeleton.
func BudgetDecision[S, N any](space S, root N, p DecisionProblem[S, N], cfg Config) DecisionResult[N] {
	return Decide(Budget, space, root, p, cfg)
}
