// Knapsack: branch-and-bound 0/1 knapsack under the Budget skeleton,
// demonstrating an optimisation search whose tree is too narrow at the
// root for static splitting — the workload class the paper's Budget
// coordination targets (Section 5.5: Budget is best for Knapsack).
package main

import (
	"fmt"

	"yewpar/internal/apps/knapsack"
	"yewpar/internal/core"
)

func main() {
	// Odd-capacity subset-sum: the family where branch and bound
	// genuinely has to search (correlated instances at this size are
	// solved in a few hundred nodes).
	s := knapsack.Generate(26, 10_000, knapsack.SubsetSum, 105)
	fmt.Printf("knapsack: %d items, capacity %d\n\n", len(s.Items), s.Cap)

	seq := core.Opt(core.Sequential, s, knapsack.Root(s), knapsack.OptProblem(), core.Config{})
	fmt.Printf("sequential      : profit %d, %9d nodes, %v\n",
		seq.Objective, seq.Stats.Nodes, seq.Stats.Elapsed.Round(1000))

	for _, b := range []int64{1_000, 10_000, 100_000} {
		r := core.Opt(core.Budget, s, knapsack.Root(s), knapsack.OptProblem(),
			core.Config{Budget: b})
		speedup := float64(seq.Stats.Elapsed) / float64(r.Stats.Elapsed)
		fmt.Printf("budget %-8d : profit %d, %9d nodes, %v (speedup %.1fx, %d spawns)\n",
			b, r.Objective, r.Stats.Nodes, r.Stats.Elapsed.Round(1000), speedup, r.Stats.Spawns)
	}
}
