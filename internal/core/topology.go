package core

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"yewpar/internal/dist"
)

// topology is the engine's view of the distributed machine: the
// sharded workpools of the localities hosted in this process, the
// worker → locality/shard assignment, and the steal plan over the
// global rank space. Each worker owns one shard of its locality's
// pool: pushes and pops touch only that uncontended shard. An idle
// worker escalates through three rings, cheapest first — rob a sibling
// shard within the locality (best-rank-first, preserving the order a
// single shared pool gave), drain the locality's steal-ahead buffer,
// and only then try a peer locality through the Transport — mirroring
// the locality-aware victim selection of Section 4.3. In a
// single-process run the peers are loopback localities (with optional
// injected latency); in a distributed run they are other OS processes.
//
// Victim selection over the transport ring depends on the scheduling
// mode. Unordered searches probe peers in random order, as the paper
// does. Ordered searches (Config.Order) consult the transport's
// per-peer best-available-priority summaries (dist.PrioAware — exact
// on the loopback network, piggybacked on frames over a wire) and
// probe the most promising victim first, so a steal is not merely
// "some work" but the best work any peer admits to having; peers that
// advertised empty pools are probed last rather than skipped, because
// summaries are hints that may be stale. After a full sweep of every
// peer fails, the locality backs off exponentially before sweeping
// again (stealBackoff), stopping the steal storms that otherwise
// accompany drain-down; idle workers meanwhile park on the locality's
// parker, to be woken by the next local push or adopted task.
//
// When steals are expensive (a wire transport, or loopback with
// injected latency), each locality additionally runs a steal-ahead
// buffer: after a successful remote steal, the next steal is issued in
// the background while the stolen task runs, so a worker going idle
// often finds a task already waiting instead of paying a blocking
// round trip. The buffer is bounded, and the number of prefetch steals
// in flight per locality is adaptive (see aheadBuf): a governor
// pipelines between 1 and Config.StealAheadMax outstanding steals
// according to how steal round-trip time compares with the rate the
// locality consumes prefetched work, collapsing back to 1 whenever a
// sweep finds every peer empty. A prefetch whose transport-level
// request times out is re-homed by the transport via Handler.OnTask
// exactly like any late steal reply, so prefetched work is never lost.
type topology[N any] struct {
	fab         *fabric[N]
	pools       []*ShardedPool[N]
	workerLoc   []int
	workerShard []int
	rngs        []*rand.Rand
	victims     [][]int           // per in-process locality: global ranks to rob
	ahead       []*aheadBuf[N]    // per in-process locality; nil when disabled
	parkers     []*parker         // per in-process locality
	backoff     []*stealBackoff   // per in-process locality; nil when no peers
	prioAware   []dist.PrioAware  // per in-process locality; nil entries when unsupported
	health      []dist.LinkHealth // per in-process locality; nil entries when unsupported
	ordered     bool              // rank victims by priority summaries
	mem         []*memState[N]    // per in-process locality memory accountant
	splitters   []*splitGate[N]   // per in-process locality; stack-stealing runs only
	vscratch    []*victimScratch  // per worker: victim-order scratch
	// dead[rank] marks globally dead localities: skipped permanently
	// by victim selection (their transports would only fail the steal,
	// but probing a corpse still costs a round trip or a timeout).
	dead []atomic.Bool
}

// victimScratch is one thief's reusable victim-ranking buffers.
type victimScratch struct {
	order []int
	keys  []int
}

// defaultStealAheadMax is the prefetch pipeline cap when
// Config.StealAheadMax is zero.
const defaultStealAheadMax = 4

// vscratchPool recycles victim-ranking scratch across concurrent
// prefetch goroutines (each sweep owns one scratch until it finishes).
var vscratchPool = sync.Pool{New: func() any { return &victimScratch{} }}

// aheadBuf is one locality's steal-ahead state. Prefetch pressure is
// bounded by the inflight token channel and *adapted* by a governor:
// the live target of outstanding steals is the steal round-trip EWMA
// divided by the EWMA of the gap between buffer claims — when a steal
// takes R ns and local workers drain a prefetched task every G ns,
// roughly R/G steals must be pipelined for the buffer never to run
// dry — clamped to [1, max]. An empty sweep (every reachable peer
// refused) collapses the target to 1, so an idle cluster is probed by
// at most one background steal per locality, exactly the pre-adaptive
// behaviour; demand and successful steals rebuild the pipeline.
type aheadBuf[N any] struct {
	buf      chan Task[N]
	inflight chan struct{} // capacity max: tokens bound outstanding prefetch steals
	max      int32
	target   atomic.Int32 // live pipeline depth, 1..max
	stealRTT atomic.Int64 // EWMA of one successful steal's round trip (ns)
	popGap   atomic.Int64 // EWMA of the gap between ahead-buffer claims (ns)
	lastPop  atomic.Int64 // unix-ns stamp of the last buffer claim
	rngMu    sync.Mutex   // guards rng (victim sweeps start concurrently)
	rng      *rand.Rand
}

// ewmaShift is the EWMA decay: new = old + (sample-old)/2^3.
const ewmaShift = 3

// ewmaUpdate folds a sample into an EWMA cell. The read-modify-write
// is deliberately not atomic as a unit: a lost update under a race
// only slows the estimate, and the governor is a heuristic.
func ewmaUpdate(a *atomic.Int64, sample int64) {
	old := a.Load()
	if old == 0 {
		a.Store(sample)
		return
	}
	a.Store(old + (sample-old)>>ewmaShift)
}

// noteRTT records one successful steal's round trip and retargets.
func (sa *aheadBuf[N]) noteRTT(d time.Duration) {
	if d > 0 {
		ewmaUpdate(&sa.stealRTT, d.Nanoseconds())
		sa.retarget()
	}
}

// notePop records a buffer claim (the consumption side of the
// governor's ratio) and retargets.
func (sa *aheadBuf[N]) notePop() {
	now := time.Now().UnixNano()
	if last := sa.lastPop.Swap(now); last != 0 && now > last {
		ewmaUpdate(&sa.popGap, now-last)
	}
	sa.retarget()
}

// retarget recomputes the live pipeline depth from the two EWMAs.
func (sa *aheadBuf[N]) retarget() {
	rtt, gap := sa.stealRTT.Load(), sa.popGap.Load()
	if rtt <= 0 || gap <= 0 {
		return // not enough signal yet: stay where we are
	}
	want := int32(rtt / gap)
	if want < 1 {
		want = 1
	}
	if want > sa.max {
		want = sa.max
	}
	sa.target.Store(want)
}

func newTopology[N any](fab *fabric[N], cfg Config) *topology[N] {
	nloc := len(fab.locs)
	tp := &topology[N]{
		fab:         fab,
		pools:       make([]*ShardedPool[N], nloc),
		workerLoc:   make([]int, cfg.Workers),
		workerShard: make([]int, cfg.Workers),
		rngs:        make([]*rand.Rand, cfg.Workers),
		victims:     make([][]int, nloc),
		parkers:     make([]*parker, nloc),
		prioAware:   make([]dist.PrioAware, nloc),
		health:      make([]dist.LinkHealth, nloc),
		ordered:     cfg.Order != OrderNone,
		mem:         make([]*memState[N], nloc),
		vscratch:    make([]*victimScratch, cfg.Workers),
		dead:        make([]atomic.Bool, fab.size),
	}
	spillCodec := fab.codec
	if spillCodec == nil {
		spillCodec = GobCodec[N]{} // single-process runs carry no app codec
	}
	for w := range tp.vscratch {
		tp.vscratch[w] = &victimScratch{}
	}
	depth := cfg.StealAhead
	if depth == 0 && (fab.wire || cfg.StealLatency > 0) {
		depth = 1 // auto: prefetch wherever a steal costs latency
	}
	if depth > 0 && fab.size > 1 {
		tp.ahead = make([]*aheadBuf[N], nloc)
	}
	if fab.size > 1 {
		tp.backoff = make([]*stealBackoff, nloc)
	}
	// Backoff scale: over a wire every empty sweep costs frames at the
	// coordinator, so idle probing starts its backoff higher. The caps
	// stay within a few round trips: an empty sweep usually means work
	// is mid-flight, not gone, and a cap beyond ~10 RTTs turns every
	// task migration into dead time — ordered searches, which migrate
	// aggressively (every steal takes the global best), are the first
	// to feel it.
	boBase, boMax := 50*time.Microsecond, time.Millisecond
	if fab.wire {
		boBase, boMax = 500*time.Microsecond, 5*time.Millisecond
	}
	// localWorkers[i] = workers hosted on in-process locality i (worker
	// w lives on locality w % nloc); by default each gets its own shard.
	localWorkers := make([]int, nloc)
	for w := 0; w < cfg.Workers; w++ {
		localWorkers[w%nloc]++
	}
	for i := range tp.pools {
		shards := cfg.PoolShards
		if shards <= 0 {
			shards = localWorkers[i]
		}
		if shards <= 0 {
			// A pure-coordinator locality (standby deployments run rank 0
			// with zero workers) still needs a pool: it seeds the root and
			// serves steals against it.
			shards = 1
		}
		tp.pools[i] = NewShardedPool[N](cfg.Pool, shards)
		fab.locs[i].pool = tp.pools[i]
		tp.mem[i] = newMemState[N](cfg.PoolBudget, cfg.SpillDir, spillCodec)
		fab.locs[i].mem = tp.mem[i]
		if fab.size > 1 {
			fab.locs[i].led = newLedger[N](fab.locs[i].rank, cfg.LedgerCap)
		}
		tp.parkers[i] = newParker(localWorkers[i])
		fab.locs[i].wake = tp.parkers[i].wake
		if pa, ok := fab.trs[i].(dist.PrioAware); ok {
			tp.prioAware[i] = pa
		}
		if lh, ok := fab.trs[i].(dist.LinkHealth); ok {
			tp.health[i] = lh
		}
		for rank := 0; rank < fab.size; rank++ {
			if rank != fab.locs[i].rank {
				tp.victims[i] = append(tp.victims[i], rank)
			}
		}
		if tp.backoff != nil {
			tp.backoff[i] = newStealBackoff(boBase, boMax)
		}
		if tp.ahead != nil {
			maxIn := cfg.StealAheadMax
			if maxIn <= 0 {
				maxIn = defaultStealAheadMax
			}
			sa := &aheadBuf[N]{
				buf:      make(chan Task[N], depth),
				inflight: make(chan struct{}, maxIn),
				max:      int32(maxIn),
				rng:      rand.New(rand.NewSource(cfg.Seed ^ 0x5DEECE66D + int64(fab.locs[i].rank)*104729)),
			}
			sa.target.Store(1) // conservative start; the governor widens it
			tp.ahead[i] = sa
		}
	}
	for w := 0; w < cfg.Workers; w++ {
		loc := w % nloc
		tp.workerLoc[w] = loc
		tp.workerShard[w] = (w / nloc) % tp.pools[loc].Shards()
		tp.rngs[w] = rand.New(rand.NewSource(cfg.Seed + int64(w)*7919))
	}
	return tp
}

// locality returns the in-process locality a worker belongs to.
func (tp *topology[N]) locality(w int) int { return tp.workerLoc[w] }

// push enqueues a task on the worker's own pool shard and releases a
// parked sibling, if any, to come rob it.
func (tp *topology[N]) push(w int, t Task[N]) {
	loc := tp.workerLoc[w]
	tp.pools[loc].Shard(tp.workerShard[w]).Push(t)
	tp.parkers[loc].wake()
}

// victimOrder writes the sequence of peer ranks a thief of loc should
// probe into sc.order. Dead peers are excluded permanently — a steal
// aimed at a corpse can only fail, after a round trip or a timeout.
// Unordered searches rotate the ring at a random start (the paper's
// random-victim policy, with every peer covered exactly once). Ordered
// searches additionally sort by the transport's summary knowledge:
// peers with known stealable work by ascending priority, then peers of
// unknown state, then peers that last advertised empty — stale hints
// demote a victim, never hide it. Each peer's summary is read exactly
// once, before sorting: on the loopback transport a lookup inspects
// the victim's live pool (locking its shards), so re-reading inside
// the sort would both contend with the victim's owner hot path and let
// the comparator shift mid-sort. The returned slice aliases sc.order.
func (tp *topology[N]) victimOrder(loc int, rng *rand.Rand, sc *victimScratch) []int {
	vs := tp.victims[loc]
	buf := sc.order[:0]
	lh := tp.health[loc]
	start := rng.Intn(len(vs))
	for i := 0; i < len(vs); i++ {
		v := vs[(start+i)%len(vs)]
		if tp.dead[v].Load() {
			continue
		}
		if lh != nil && lh.Suspected(v) {
			// Quarantined, not mourned: the link is heartbeat-silent or
			// its session is suspended mid-resume. Steals against it can
			// only fail until it heals or is declared dead, so skip it
			// this sweep — it re-enters the ring the moment it resumes.
			continue
		}
		buf = append(buf, v)
	}
	sc.order = buf
	if len(buf) == 0 {
		return buf
	}
	pa := tp.prioAware[loc]
	if !tp.ordered || pa == nil {
		return buf
	}
	keys := sc.keys[:0]
	for _, v := range buf {
		p, known := pa.PeerBestPrio(v)
		switch {
		case !known:
			p = maxTaskPrio + 1 // unknown: after every known priority
		case p < 0:
			p = maxTaskPrio + 2 // advertised empty: last resort
		}
		keys = append(keys, p)
	}
	sc.keys = keys
	// Insertion sort: the ring is small (peer count), and stability
	// preserves the random rotation as the tiebreak among equals.
	for i := 1; i < len(buf); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			buf[j], buf[j-1] = buf[j-1], buf[j]
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return buf
}

// popOrSteal takes the next task for worker w, cheapest source first:
// the worker's own shard, then sibling shards within the locality
// (best-rank-first, no transport involved), then the locality's
// steal-ahead buffer, then peer localities through the transport.
// Steal accounting is recorded in the worker's stats shard.
func (tp *topology[N]) popOrSteal(w int, sh *WorkerStats) (Task[N], bool) {
	loc, shard := tp.workerLoc[w], tp.workerShard[w]
	if t, ok := tp.pools[loc].Shard(shard).Pop(); ok {
		return t, true
	}
	if t, ok := tp.pools[loc].StealExcept(shard); ok {
		sh.LocalSteals++
		return t, true
	}
	if tp.ahead != nil {
		select {
		case t := <-tp.ahead[loc].buf:
			sh.StealsOK++
			sh.PrefetchHits++
			tp.ahead[loc].notePop()
			if bo := tp.backoffAt(loc); bo != nil {
				bo.reset()
			}
			tp.prefetch(loc)
			return t, true
		default:
		}
	}
	// The in-RAM frontier is dry: re-admit a spilled segment before
	// paying any transport round trip — the work is already ours.
	if m := tp.mem[loc]; m != nil {
		if t, ok := m.readmit(tp.pools[loc], tp.parkers[loc].wake); ok {
			return t, true
		}
	}
	// Stack-stealing: before leaving the locality, ask a running
	// sibling to split its live stack — still no transport involved.
	if tp.splitters != nil {
		if g := tp.splitters[loc]; g != nil {
			var abort <-chan struct{}
			if tp.fab.cancel != nil {
				abort = tp.fab.cancel.ch
			}
			if ts := g.request(splitWant, splitLocalWait, abort); len(ts) > 0 {
				for _, t := range ts[1:] {
					tp.pools[loc].Push(t)
				}
				if len(ts) > 1 {
					tp.parkers[loc].wake()
				}
				sh.LocalSteals++
				return ts[0], true
			}
		}
	}
	vs := tp.victims[loc]
	if len(vs) == 0 {
		var zero Task[N]
		return zero, false
	}
	bo := tp.backoffAt(loc)
	if bo != nil && !bo.ready() {
		// A recent sweep of every peer came back empty: don't storm
		// them again yet. The caller's idle loop parks; remote work is
		// re-probed when the backoff window closes.
		var zero Task[N]
		return zero, false
	}
	sc := tp.vscratch[w]
	order := tp.victimOrder(loc, tp.rngs[w], sc)
	if len(order) == 0 {
		// Every peer is dead: this locality is on its own for good.
		var zero Task[N]
		return zero, false
	}
	guided := tp.ordered && tp.prioAware[loc] != nil
	// Stack-stealing rides kSplit where the transport supports it: the
	// victim serves pool spares if it has any and splits a live stack
	// otherwise, so the sweep reaches work an ordinary Steal cannot see.
	var splitTr dist.SplitStealer
	if tp.splitters != nil {
		splitTr, _ = tp.fab.trs[loc].(dist.SplitStealer)
	}
	var sa *aheadBuf[N]
	if tp.ahead != nil {
		sa = tp.ahead[loc]
	}
	for i, v := range order {
		var wt dist.WireTask
		var ok bool
		var err error
		var t0 time.Time
		if sa != nil {
			t0 = time.Now()
		}
		if splitTr != nil {
			wt, ok, err = splitTr.SplitSteal(v)
		} else {
			wt, ok, err = tp.fab.trs[loc].Steal(v)
		}
		if err != nil || !ok {
			sh.StealsFail++
			continue
		}
		if sa != nil {
			// A blocking steal's round trip is the same signal the
			// prefetch governor pipelines against.
			sa.noteRTT(time.Since(t0))
		}
		sh.StealsOK++
		// An ordered steal is one whose victim ranking was informed by
		// a summary: the key recorded while sorting (not a fresh — and
		// pool-locking — lookup) is the ground truth of what guided it.
		if guided && sc.keys[i] <= maxTaskPrio {
			sh.OrderedSteals++
		}
		if bo != nil {
			bo.reset()
		}
		tp.prefetch(loc)
		return tp.fromWire(loc, wt), true
	}
	if bo != nil {
		bo.fail()
	}
	var zero Task[N]
	return zero, false
}

// localBacklog reports the work immediately available at a locality
// (pool backlog plus buffered prefetched tasks) without touching the
// transport. Parking workers re-check it after registering as waiters,
// closing the lost-wakeup window.
func (tp *topology[N]) localBacklog(loc int) int {
	n := tp.pools[loc].Size()
	if tp.ahead != nil {
		n += len(tp.ahead[loc].buf)
	}
	if m := tp.mem[loc]; m != nil {
		n += int(m.onDisk.Load()) // spilled segments are claimable work
	}
	return n
}

// backoffAt returns loc's steal backoff, or nil when there are no
// peers to back off from.
func (tp *topology[N]) backoffAt(loc int) *stealBackoff {
	if tp.backoff == nil {
		return nil
	}
	return tp.backoff[loc]
}

// prefetch issues one background steal round for a locality, if
// steal-ahead is enabled, its buffer has room, and the adaptive
// pipeline is below its current target depth (each outstanding round
// holds one inflight token; the governor moves the target between 1
// and the token capacity). A stolen task lands in the buffer (or
// spills to the pool if the buffer filled meanwhile); either way it
// is a registered live task that local workers will drain before the
// global count can reach zero — the OnTask adoption invariant is
// untouched by pipelining, because every round is an ordinary
// transport steal.
func (tp *topology[N]) prefetch(loc int) {
	if tp.ahead == nil {
		return
	}
	sa := tp.ahead[loc]
	if len(sa.inflight) >= int(sa.target.Load()) {
		// The pipeline is at its adaptive depth. (The check races with
		// token release, but the token capacity still bounds pressure.)
		return
	}
	select {
	case sa.inflight <- struct{}{}:
	default:
		return
	}
	if len(sa.buf) == cap(sa.buf) || (tp.fab.cancel != nil && tp.fab.cancel.cancelled()) {
		<-sa.inflight
		return
	}
	go func() {
		defer func() { <-sa.inflight }()
		sc := vscratchPool.Get().(*victimScratch)
		defer vscratchPool.Put(sc)
		sa.rngMu.Lock()
		order := tp.victimOrder(loc, sa.rng, sc)
		sa.rngMu.Unlock()
		for _, v := range order {
			t0 := time.Now()
			wt, ok, err := tp.fab.trs[loc].Steal(v)
			if err != nil || !ok {
				continue
			}
			sa.noteRTT(time.Since(t0))
			t := tp.fromWire(loc, wt)
			select {
			case sa.buf <- t:
			default:
				tp.pools[loc].Push(t)
			}
			// Either way the task is now locally available: release a
			// parked worker to claim it.
			tp.parkers[loc].wake()
			return
		}
		// Empty sweep: every reachable peer refused. Collapse the
		// pipeline so an idle cluster sees at most one background probe
		// per locality until work (and demand) reappears.
		sa.target.Store(1)
	}()
}

// fromWire turns a transport task back into an engine task via the
// locality's adopt path: bound snapshot merged, receipt registered
// with the live count, supervision family opened under the hand-over
// id so the victim's ledger copy can eventually be acked away.
func (tp *topology[N]) fromWire(loc int, wt dist.WireTask) Task[N] {
	return tp.fab.locs[loc].adopt(wt)
}

// onDeath reacts to a peer locality's death as seen from in-process
// locality loc: the rank is struck from the victim ring, the ledger
// entries it was holding are re-enqueued locally (the replayed subtree
// roots stay covered by their original registrations, so no accounting
// changes hands), the steal backoff is reset — the victim set just
// changed shape, so survivors should re-probe immediately instead of
// sleeping through the recovery window — and parked workers are woken
// to claim the replayed work. Reports whether this call was the first
// to observe the rank's death in this process (for death counting).
func (tp *topology[N]) onDeath(loc, rank int) bool {
	first := tp.dead[rank].CompareAndSwap(false, true)
	if led := tp.fab.locs[loc].led; led != nil {
		tasks := led.reap(rank)
		if rank == 0 && first {
			if ar, ok := tp.fab.trs[loc].(dist.AckRelay); ok && ar.AcksRelayed() {
				// The coordinator relayed completion acks; any ack in
				// flight at its death is gone, and with it the retire of
				// the entry it was for. Replay everything outstanding —
				// idempotent, and the only way every registration is
				// guaranteed a continuation (see ledger.reapAll).
				tasks = append(tasks, led.reapAll()...)
			}
		}
		for _, t := range tasks {
			tp.pools[loc].Push(t)
			tp.parkers[loc].wake()
		}
	}
	if bo := tp.backoffAt(loc); bo != nil {
		bo.reset()
	}
	tp.parkers[loc].wake()
	return first
}
