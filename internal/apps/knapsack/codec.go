package knapsack

import (
	"encoding/binary"
	"fmt"

	"yewpar/internal/core"
)

// nodeCodec is the compact wire form of a knapsack node: three
// varints. A typical node is 4-8 bytes against gob's ~60 (type
// descriptor plus field headers every node).
type nodeCodec struct{}

// Codec returns the compact Node codec used by the distributed mode.
func Codec() core.Codec[Node] { return nodeCodec{} }

// Encode implements core.Codec.
func (c nodeCodec) Encode(n Node) ([]byte, error) { return c.EncodeTo(nil, n) }

// EncodeTo implements core.Codec.
func (nodeCodec) EncodeTo(dst []byte, n Node) ([]byte, error) {
	dst = binary.AppendUvarint(dst, uint64(n.Pos))
	dst = binary.AppendVarint(dst, n.Profit)
	dst = binary.AppendVarint(dst, n.Weight)
	return dst, nil
}

// Decode implements core.Codec.
func (nodeCodec) Decode(b []byte) (Node, error) {
	var n Node
	pos, k := binary.Uvarint(b)
	if k <= 0 {
		return n, fmt.Errorf("knapsack: truncated node position")
	}
	b = b[k:]
	profit, k := binary.Varint(b)
	if k <= 0 {
		return n, fmt.Errorf("knapsack: truncated node profit")
	}
	b = b[k:]
	weight, k := binary.Varint(b)
	if k <= 0 {
		return n, fmt.Errorf("knapsack: truncated node weight")
	}
	if len(b) != k {
		return n, fmt.Errorf("knapsack: %d trailing bytes after node", len(b)-k)
	}
	n.Pos = int(pos)
	n.Profit = profit
	n.Weight = weight
	return n, nil
}
