package core

// NodeGenerator lazily yields the children of one search-tree node in
// traversal (heuristic) order. It is the paper's Lazy Node Generator
// interface (Section 4.1): children are materialised one at a time so
// that pruning can discard subtrees before they are ever built.
//
// Implementations are used by a single worker at a time and need not be
// safe for concurrent use.
type NodeGenerator[N any] interface {
	// HasNext reports whether more children remain.
	HasNext() bool
	// Next returns the next child. It must only be called after
	// HasNext has returned true.
	Next() N
}

// GenFactory constructs the lazy node generator for a parent node within
// a search space. It corresponds to the NodeGenerator constructor of the
// paper's Listing 1. Node values must be treated as immutable: a factory
// must not retain or mutate the parent it is given, because nodes are
// shared between tasks when subtrees are spawned.
type GenFactory[S, N any] func(space S, parent N) NodeGenerator[N]

// SliceGen is a NodeGenerator over a pre-computed child slice, in slice
// order. It is convenient for applications whose child lists are cheap
// to build eagerly, and for tests.
type SliceGen[N any] struct {
	children []N
	i        int
}

// NewSliceGen returns a generator yielding the given children in order.
func NewSliceGen[N any](children []N) *SliceGen[N] {
	return &SliceGen[N]{children: children}
}

// HasNext implements NodeGenerator.
func (g *SliceGen[N]) HasNext() bool { return g.i < len(g.children) }

// Next implements NodeGenerator.
func (g *SliceGen[N]) Next() N {
	n := g.children[g.i]
	g.i++
	return n
}

// Remaining returns the number of children not yet yielded.
func (g *SliceGen[N]) Remaining() int { return len(g.children) - g.i }

// EmptyGen is a NodeGenerator with no children (a leaf).
type EmptyGen[N any] struct{}

// HasNext implements NodeGenerator.
func (EmptyGen[N]) HasNext() bool { return false }

// Next implements NodeGenerator; it panics, as leaves have no children.
func (EmptyGen[N]) Next() N { panic("core: Next on empty generator") }

// FuncGen adapts a pull function to a NodeGenerator. The function
// returns the next child and true, or a zero node and false when
// exhausted. FuncGen buffers one lookahead element so HasNext is pure.
type FuncGen[N any] struct {
	next func() (N, bool)
	buf  N
	ok   bool
	done bool
}

// NewFuncGen returns a generator pulling children from next.
func NewFuncGen[N any](next func() (N, bool)) *FuncGen[N] {
	return &FuncGen[N]{next: next}
}

// HasNext implements NodeGenerator.
func (g *FuncGen[N]) HasNext() bool {
	if g.done {
		return false
	}
	if g.ok {
		return true
	}
	g.buf, g.ok = g.next()
	if !g.ok {
		g.done = true
	}
	return g.ok
}

// Next implements NodeGenerator.
func (g *FuncGen[N]) Next() N {
	if !g.HasNext() {
		panic("core: Next on exhausted generator")
	}
	g.ok = false
	return g.buf
}
