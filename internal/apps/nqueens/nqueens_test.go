package nqueens

import (
	"testing"

	"yewpar/internal/core"
)

// Known solution counts (OEIS A000170).
var known = map[int]int64{
	1: 1, 2: 0, 3: 0, 4: 2, 5: 10, 6: 4, 7: 40, 8: 92,
	9: 352, 10: 724, 11: 2680, 12: 14200,
}

func TestKnownCountsSequential(t *testing.T) {
	for n, want := range known {
		got, _ := Count(n, core.Sequential, core.Config{})
		if got != want {
			t.Errorf("n=%d: %d solutions, want %d", n, got, want)
		}
	}
}

func TestAllSkeletonsAgree(t *testing.T) {
	const n = 11
	want := known[n]
	for _, coord := range []core.Coordination{core.DepthBounded, core.StackStealing, core.Budget} {
		got, _ := Count(n, coord, core.Config{Workers: 8, Localities: 2, DCutoff: 3, Budget: 100})
		if got != want {
			t.Errorf("%v: %d, want %d", coord, got, want)
		}
	}
}

func TestNoAttacksInvariant(t *testing.T) {
	// walk the whole n=6 tree; every node's masks must be consistent
	// with a legal partial placement: Row bits placed, no column reuse.
	s := NewSpace(6)
	var walk func(n Node)
	walk = func(n Node) {
		if popcount(n.Cols) != n.Row {
			t.Fatalf("node at row %d has %d columns occupied", n.Row, popcount(n.Cols))
		}
		g := Gen(s, n)
		for g.HasNext() {
			walk(g.Next())
		}
	}
	walk(Root(s))
}

func popcount(x uint64) int {
	c := 0
	for ; x != 0; x &= x - 1 {
		c++
	}
	return c
}

func TestChildrenLeftToRight(t *testing.T) {
	s := NewSpace(5)
	g := Gen(s, Root(s))
	prev := -1
	for g.HasNext() {
		n := g.Next()
		col := -1
		for c := 0; c < 5; c++ {
			if n.Cols&(1<<uint(c)) != 0 {
				col = c
			}
		}
		if col <= prev {
			t.Fatalf("columns not left-to-right: %d after %d", col, prev)
		}
		prev = col
	}
	if prev != 4 {
		t.Fatalf("root should offer all 5 columns, last was %d", prev)
	}
}

func TestSpaceValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for n=0")
		}
	}()
	NewSpace(0)
}

func BenchmarkCountQueens11(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Count(11, core.Sequential, core.Config{})
	}
}
