package dist

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// The chaos harness itself: fired kills reach the injected func with
// the right rank, stop() cancels pending kills and is idempotent.
func TestChaosPlanFiresAndCancels(t *testing.T) {
	var mu sync.Mutex
	var got []int
	stop := ChaosPlan{Kills: []ChaosKill{
		{Rank: 2, After: 0},
		{Rank: 5, After: time.Millisecond},
		{Rank: 7, After: time.Hour}, // must be cancelled, not waited for
	}}.Start(func(rank int) {
		mu.Lock()
		got = append(got, rank)
		mu.Unlock()
	})
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		n := len(got)
		mu.Unlock()
		if n == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("scheduled kills did not fire: got %v", got)
		}
		time.Sleep(time.Millisecond)
	}
	stop()
	stop() // idempotent
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 2 || (got[0] != 2 && got[0] != 5) {
		t.Fatalf("kills fired = %v, want ranks 2 and 5 only", got)
	}
}

// failoverHarnesses builds the four deployment variants with standby
// armed (the loopback network needs no flag: its Kill(0) always hands
// the collector role to the lowest survivor).
func failoverHarnesses() []harness {
	return []harness{
		{name: "loopback", make: func(t *testing.T, n int) []Transport {
			net := NewLoopback(n, LoopbackOptions{})
			t.Cleanup(func() { net.Close() })
			return net.Transports()
		}},
		{name: "tcp", make: func(t *testing.T, n int) []Transport {
			return makeTCP(t, n, WireOptions{Standby: true})
		}},
		{name: "loopback-mesh", make: func(t *testing.T, n int) []Transport {
			net := NewLoopback(n, LoopbackOptions{Wave: true})
			t.Cleanup(func() { net.Close() })
			return net.Transports()
		}},
		{name: "tcp-mesh", make: func(t *testing.T, n int) []Transport {
			return makeTCP(t, n, WireOptions{Topology: TopologyMesh, Standby: true})
		}},
	}
}

// The coordinator-failover contract, driven by the chaos harness:
// rank 0 dies mid-search and the lowest survivor adopts the
// coordinator role. Afterwards the deployment must still (a) notify
// every survivor of the death, (b) report the promotion through the
// Promoter interface, (c) keep bounds flowing between survivors, (d)
// not terminate while survivor work is live, (e) terminate when it
// drains, and (f) complete the terminal Gather at the promoted rank
// with a nil slot for the corpse.
func TestConformanceCoordinatorDeathFailover(t *testing.T) {
	for _, h := range failoverHarnesses() {
		t.Run(h.name, func(t *testing.T) {
			trs := h.make(t, 4)
			hs := startAll(trs)

			// Rank 1 (the standby) holds the sentinel live work that
			// must keep the search open across the takeover.
			trs[1].AddTasks(1)
			// Give a wire transport one flush quantum so the +1 and the
			// hub's first replication snapshot are on the wire before
			// the coordinator dies.
			time.Sleep(100 * time.Millisecond)

			var killed atomic.Bool
			stop := ChaosPlan{Kills: []ChaosKill{{Rank: 0, After: 10 * time.Millisecond}}}.Start(func(rank int) {
				kill(t, h, trs, rank)
				killed.Store(true)
			})
			defer stop()

			for _, r := range []int{1, 2, 3} {
				awaitDeath(t, trs[r], 0)
			}
			if !killed.Load() {
				t.Fatal("death observed before the chaos plan fired")
			}

			// The lowest survivor — and nobody else — promotes itself.
			eventually(t, "rank 1 to adopt the coordinator role", func() bool { return Promoted(trs[1]) })
			if Promoted(trs[2]) || Promoted(trs[3]) {
				t.Fatal("a rank other than the lowest survivor promoted itself")
			}

			// Bounds still flow between survivors through the new
			// coordinator (star) or the untouched peer links (mesh).
			trs[2].BroadcastBound(99, []byte("post-takeover"))
			eventually(t, "bound to reach surviving rank 3", func() bool { return hs[3].boundMax.Load() == 99 })

			// The sentinel still holds the search open: takeover must
			// not force termination.
			select {
			case <-trs[1].Done():
				t.Fatal("coordinator death terminated a search with live survivor work")
			default:
			}

			// Draining the survivor work ends the search everywhere.
			trs[1].AddTasks(-1)
			for _, r := range []int{1, 2, 3} {
				select {
				case <-trs[r].Done():
				case <-time.After(10 * time.Second):
					t.Fatalf("rank %d not released after survivor work drained", r)
				}
			}

			// The terminal collective completes at the promoted rank,
			// with a nil slot for the dead coordinator.
			var got [][]byte
			var wg sync.WaitGroup
			for _, r := range []int{1, 2, 3} {
				wg.Add(1)
				go func(r int) {
					defer wg.Done()
					blobs, err := trs[r].Gather([]byte{byte(r)})
					if err != nil {
						t.Errorf("rank %d gather: %v", r, err)
					}
					if r == 1 {
						got = blobs
					}
				}(r)
			}
			wg.Wait()
			if len(got) != 4 || got[0] != nil {
				t.Fatalf("gather after coordinator death = %v, want 4 slots with nil for rank 0", got)
			}
			for _, r := range []int{1, 2, 3} {
				if len(got[r]) != 1 || got[r][0] != byte(r) {
					t.Fatalf("gather slot %d = %v, want [%d]", r, got[r], r)
				}
			}
		})
	}
}
