package yewpar

// Repository-level integration tests: cross-validation of the
// executable operational model against the production engine, the
// full application × skeleton matrix on small instances, and the
// twelve named skeleton entry points.

import (
	"fmt"
	"testing"

	"yewpar/internal/apps/knapsack"
	"yewpar/internal/apps/maxclique"
	"yewpar/internal/apps/nqueens"
	"yewpar/internal/apps/semigroups"
	"yewpar/internal/apps/sip"
	"yewpar/internal/apps/tsp"
	"yewpar/internal/apps/uts"
	"yewpar/internal/core"
	"yewpar/internal/graph"
	"yewpar/internal/semantics"
)

var allCoords = []core.Coordination{core.Sequential, core.DepthBounded, core.StackStealing, core.Budget}

// semTreeGen adapts a materialised semantics.Tree to the engine's Lazy
// Node Generator interface, letting the same tree be searched by both
// the formal model and the production skeletons.
func semTreeGen(s *semantics.Tree, parent string) core.NodeGenerator[string] {
	return core.NewSliceGen(s.Children[parent])
}

// The operational model (Section 3) and the engine (Section 4) must
// compute identical enumeration folds and optimisation maxima on the
// same trees.
func TestModelMatchesEngineEnumeration(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		tr := semantics.GenTree(seed, 3, 6, 100)

		cfg := semantics.NewConfig(tr, semantics.Enumeration, 0, 3)
		cfg.Run(seed, semantics.Params{DCutoff: 2, KBudget: 2}, nil, 60*tr.Size()*tr.Size()+2000)
		model := cfg.Result()

		p := core.EnumProblem[*semantics.Tree, string, int64]{
			Gen:       semTreeGen,
			Objective: func(s *semantics.Tree, n string) int64 { return int64(s.H[n]) },
			Monoid:    core.SumInt64{},
		}
		for _, coord := range allCoords {
			res := core.Enum(coord, tr, "", p, core.Config{Workers: 4})
			if res.Value != int64(model) {
				t.Errorf("seed %d %v: engine %d, model %d", seed, coord, res.Value, model)
			}
			if res.Stats.Nodes != int64(tr.Size()) {
				t.Errorf("seed %d %v: engine visited %d nodes, tree has %d", seed, coord, res.Stats.Nodes, tr.Size())
			}
		}
	}
}

func TestModelMatchesEngineOptimisation(t *testing.T) {
	for seed := int64(20); seed < 28; seed++ {
		tr := semantics.GenTree(seed, 3, 6, 100)

		cfg := semantics.NewConfig(tr, semantics.Optimisation, 0, 2)
		cfg.Run(seed, semantics.Params{DCutoff: 2, KBudget: 2}, nil, 60*tr.Size()*tr.Size()+2000)
		model := cfg.Result()

		p := core.OptProblem[*semantics.Tree, string]{
			Gen:       semTreeGen,
			Objective: func(s *semantics.Tree, n string) int64 { return int64(s.H[n]) },
			Bound:     func(s *semantics.Tree, n string) int64 { return int64(s.SubtreeMax(n)) },
		}
		for _, coord := range allCoords {
			res := core.Opt(coord, tr, "", p, core.Config{Workers: 4})
			if res.Objective != int64(model) {
				t.Errorf("seed %d %v: engine max %d, model max %d", seed, coord, res.Objective, model)
			}
		}
	}
}

// Kneser k-clique: ω(K(n,k)) = ⌊n/k⌋ exactly, giving decision
// instances with certain answers on a genuine combinatorial object
// (the family the paper's H(4,4) spreads instance belongs to).
func TestKneserCliqueDecision(t *testing.T) {
	cases := []struct{ n, k int }{{6, 2}, {7, 2}, {8, 2}, {9, 3}}
	for _, c := range cases {
		g := graph.Kneser(c.n, c.k)
		omega := graph.KneserCliqueNumber(c.n, c.k)
		for _, coord := range allCoords {
			if _, found, _ := maxclique.Decide(g, omega, coord, core.Config{Workers: 4}); !found {
				t.Errorf("K(%d,%d) %v: ω-clique of size %d not found", c.n, c.k, coord, omega)
			}
			if _, found, _ := maxclique.Decide(g, omega+1, coord, core.Config{Workers: 4}); found {
				t.Errorf("K(%d,%d) %v: impossible clique of size %d found", c.n, c.k, coord, omega+1)
			}
		}
		clique, _ := maxclique.Solve(g, core.DepthBounded, core.Config{Workers: 4})
		if clique.Count() != omega {
			t.Errorf("K(%d,%d): solved ω = %d, want %d", c.n, c.k, clique.Count(), omega)
		}
	}
}

// Every application agrees with its sequential self under every
// parallel skeleton and a non-trivial locality/latency configuration.
func TestMatrixAllAppsAllSkeletons(t *testing.T) {
	cfg := core.Config{Workers: 6, Localities: 2, DCutoff: 2, Budget: 64, Chunked: true,
		BoundLatency: 50_000, StealLatency: 10_000}

	t.Run("maxclique", func(t *testing.T) {
		g := graph.Random(45, 0.6, 5)
		want, _ := maxclique.Solve(g, core.Sequential, core.Config{})
		for _, coord := range allCoords[1:] {
			got, _ := maxclique.Solve(g, coord, cfg)
			if got.Count() != want.Count() {
				t.Errorf("%v: %d != %d", coord, got.Count(), want.Count())
			}
		}
	})
	t.Run("knapsack", func(t *testing.T) {
		s := knapsack.Generate(18, 1000, knapsack.SubsetSum, 9)
		want, _ := knapsack.Solve(s, core.Sequential, core.Config{})
		for _, coord := range allCoords[1:] {
			got, _ := knapsack.Solve(s, coord, cfg)
			if got != want {
				t.Errorf("%v: %d != %d", coord, got, want)
			}
		}
	})
	t.Run("tsp", func(t *testing.T) {
		s := tsp.GenerateEuclidean(11, 500, 9)
		want, _ := tsp.Solve(s, core.Sequential, core.Config{})
		for _, coord := range allCoords[1:] {
			got, _ := tsp.Solve(s, coord, cfg)
			if got != want {
				t.Errorf("%v: %d != %d", coord, got, want)
			}
		}
	})
	t.Run("sip", func(t *testing.T) {
		s := sip.GenerateSat(35, 0.4, 10, 0.2, 9)
		for _, coord := range allCoords {
			mapping, found, _ := sip.Solve(s, coord, cfg)
			if !found || !sip.VerifyEmbedding(s.P, s.T, mapping) {
				t.Errorf("%v: embedding missing or invalid", coord)
			}
		}
	})
	t.Run("uts", func(t *testing.T) {
		s := &uts.Space{Shape: uts.Binomial, B0: 300, M: 5, Q: 0.15, Seed: 9}
		want, _ := uts.Count(s, core.Sequential, core.Config{})
		for _, coord := range allCoords[1:] {
			got, _ := uts.Count(s, coord, cfg)
			if got != want {
				t.Errorf("%v: %d != %d", coord, got, want)
			}
		}
	})
	t.Run("semigroups", func(t *testing.T) {
		const genus, want = 11, 343
		for _, coord := range allCoords {
			got, _ := semigroups.Count(genus, coord, cfg)
			if got != want {
				t.Errorf("%v: %d != %d", coord, got, want)
			}
		}
	})
}

// The twelve named skeletons of the paper, each exercised once.
func TestTwelveNamedSkeletons(t *testing.T) {
	g := graph.Random(35, 0.55, 3)
	s := maxclique.NewSpace(g)
	root := maxclique.Root(s)
	opt := maxclique.OptProblem()
	wantOpt := core.SequentialOpt(s, root, opt).Objective

	dec := maxclique.DecisionProblem(int(wantOpt))
	cfg := core.Config{Workers: 4}

	cnt := core.EnumProblem[*maxclique.Space, maxclique.Node, int64]{
		Gen:       maxclique.Gen,
		Objective: func(*maxclique.Space, maxclique.Node) int64 { return 1 },
		Monoid:    core.SumInt64{},
	}
	wantCnt := core.SequentialEnum(s, root, cnt).Value

	if v := core.DepthBoundedEnum(s, root, cnt, cfg).Value; v != wantCnt {
		t.Errorf("DepthBoundedEnum: %d != %d", v, wantCnt)
	}
	if v := core.StackStealEnum(s, root, cnt, cfg).Value; v != wantCnt {
		t.Errorf("StackStealEnum: %d != %d", v, wantCnt)
	}
	if v := core.BudgetEnum(s, root, cnt, cfg).Value; v != wantCnt {
		t.Errorf("BudgetEnum: %d != %d", v, wantCnt)
	}
	if v := core.DepthBoundedOpt(s, root, opt, cfg).Objective; v != wantOpt {
		t.Errorf("DepthBoundedOpt: %d != %d", v, wantOpt)
	}
	if v := core.StackStealOpt(s, root, opt, cfg).Objective; v != wantOpt {
		t.Errorf("StackStealOpt: %d != %d", v, wantOpt)
	}
	if v := core.BudgetOpt(s, root, opt, cfg).Objective; v != wantOpt {
		t.Errorf("BudgetOpt: %d != %d", v, wantOpt)
	}
	if r := core.SequentialDecision(s, root, dec); !r.Found {
		t.Error("SequentialDecision: not found")
	}
	if r := core.DepthBoundedDecision(s, root, dec, cfg); !r.Found {
		t.Error("DepthBoundedDecision: not found")
	}
	if r := core.StackStealDecision(s, root, dec, cfg); !r.Found {
		t.Error("StackStealDecision: not found")
	}
	if r := core.BudgetDecision(s, root, dec, cfg); !r.Found {
		t.Error("BudgetDecision: not found")
	}
}

// The BestFirst extension coordination must agree with the paper's
// skeletons on real applications.
func TestBestFirstOnApplications(t *testing.T) {
	g := graph.Random(50, 0.6, 13)
	want, _ := maxclique.Solve(g, core.Sequential, core.Config{})
	s := maxclique.NewSpace(g)
	res := core.BestFirstOpt(s, maxclique.Root(s), maxclique.OptProblem(), core.Config{Workers: 6, Budget: 64})
	if int(res.Objective) != want.Count() {
		t.Errorf("BestFirstOpt clique %d, want %d", res.Objective, want.Count())
	}

	ks := knapsack.Generate(18, 1000, knapsack.SubsetSum, 4)
	wantP, _ := knapsack.Solve(ks, core.Sequential, core.Config{})
	kres := core.BestFirstOpt(ks, knapsack.Root(ks), knapsack.OptProblem(), core.Config{Workers: 6, Budget: 256})
	if kres.Objective != wantP {
		t.Errorf("BestFirstOpt knapsack %d, want %d", kres.Objective, wantP)
	}
}

// The replicable skeleton on a real application: same answer as the
// anomalous skeletons, and node counts independent of worker count.
func TestReplicableOnMaxClique(t *testing.T) {
	g := graph.Random(60, 0.6, 77)
	want, _ := maxclique.Solve(g, core.Sequential, core.Config{})
	s := maxclique.NewSpace(g)
	var reference int64
	for _, workers := range []int{1, 3, 8} {
		res := core.ReplicableOpt(s, maxclique.Root(s), maxclique.OptProblem(),
			core.Config{Workers: workers, DCutoff: 2})
		if int(res.Objective) != want.Count() {
			t.Fatalf("workers=%d: clique %d, want %d", workers, res.Objective, want.Count())
		}
		if reference == 0 {
			reference = res.Stats.Nodes
		} else if res.Stats.Nodes != reference {
			t.Errorf("workers=%d visited %d nodes, reference %d — not replicable",
				workers, res.Stats.Nodes, reference)
		}
	}
}

// N-Queens under every skeleton (the extra application shipped with
// the original YewPar distribution).
func TestNQueensMatrix(t *testing.T) {
	const n, want = 10, 724
	for _, coord := range allCoords {
		got, _ := nqueens.Count(n, coord, core.Config{Workers: 6, DCutoff: 3, Budget: 64})
		if got != want {
			t.Errorf("%v: %d solutions, want %d", coord, got, want)
		}
	}
}

// Parallel enumeration visits every node exactly once even under
// latency injection, across many seeds — the Theorem 3.1 invariant on
// the production engine.
func TestEveryNodeOnceUnderLatency(t *testing.T) {
	if testing.Short() {
		t.Skip("latency-injected sweep")
	}
	for seed := int64(0); seed < 6; seed++ {
		s := &uts.Space{Shape: uts.Binomial, B0: 200, M: 4, Q: 0.2, Seed: seed}
		want, _ := uts.Count(s, core.Sequential, core.Config{})
		for _, coord := range allCoords[1:] {
			t.Run(fmt.Sprintf("%v/seed%d", coord, seed), func(t *testing.T) {
				got, stats := uts.Count(s, coord, core.Config{
					Workers: 8, Localities: 3, StealLatency: 20_000, Budget: 16, DCutoff: 3,
				})
				if got != want || stats.Nodes != want {
					t.Errorf("count %d (visited %d), want %d", got, stats.Nodes, want)
				}
			})
		}
	}
}
