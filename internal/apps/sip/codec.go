package sip

import (
	"encoding/binary"
	"fmt"

	"yewpar/internal/bitset"
	"yewpar/internal/core"
)

// nodeCodec is the compact wire form of a SIP node. Assigned is a
// partial injection of pattern vertices into target vertices, sent as
// a varint sequence; Used is by construction exactly the image of
// Assigned, so it is not sent at all — only its capacity (the target
// order) is, and the decoder rebuilds the set. For a 30-vertex pattern
// over a 150-vertex target this replaces a ~100-byte bitset-plus-gob
// stream with a handful of bytes per assigned vertex.
type nodeCodec struct{}

// Codec returns the compact Node codec used by the distributed mode.
func Codec() core.Codec[Node] { return nodeCodec{} }

// Encode implements core.Codec.
func (c nodeCodec) Encode(n Node) ([]byte, error) { return c.EncodeTo(nil, n) }

// EncodeTo implements core.Codec.
func (nodeCodec) EncodeTo(dst []byte, n Node) ([]byte, error) {
	dst = binary.AppendUvarint(dst, uint64(n.Used.Cap()))
	dst = binary.AppendUvarint(dst, uint64(len(n.Assigned)))
	for _, t := range n.Assigned {
		dst = binary.AppendUvarint(dst, uint64(t))
	}
	return dst, nil
}

// Decode implements core.Codec.
func (nodeCodec) Decode(b []byte) (Node, error) {
	var n Node
	capN, k := binary.Uvarint(b)
	if k <= 0 {
		return n, fmt.Errorf("sip: truncated target order")
	}
	b = b[k:]
	cnt, k := binary.Uvarint(b)
	if k <= 0 {
		return n, fmt.Errorf("sip: truncated assignment count")
	}
	b = b[k:]
	if cnt > capN {
		return n, fmt.Errorf("sip: %d assignments exceed target order %d", cnt, capN)
	}
	n.Used = bitset.New(int(capN))
	if cnt > 0 {
		n.Assigned = make([]int32, cnt)
	}
	for i := range n.Assigned {
		t, k := binary.Uvarint(b)
		if k <= 0 {
			return n, fmt.Errorf("sip: truncated assignment %d", i)
		}
		b = b[k:]
		if t >= capN {
			return n, fmt.Errorf("sip: assignment %d targets vertex %d of %d", i, t, capN)
		}
		n.Assigned[i] = int32(t)
		n.Used.Add(int(t))
	}
	if len(b) != 0 {
		return n, fmt.Errorf("sip: %d trailing bytes after node", len(b))
	}
	return n, nil
}
