package core

import (
	"runtime"
	"sync"
	"time"
)

// This file implements the BestFirst extension coordination — not one
// of the paper's four, but the worked instance of its extensibility
// claim (Section 4: "new coordination methods may provide best-first
// search or random task creation"). Workers repeatedly take the most
// promising subtree and explore it depth-first for a backtrack budget,
// shedding the lowest-depth leftovers back into the pool with fresh
// priorities — a budget-style splitter married to best-first global
// ordering.
//
// The pool is a per-worker-sharded PrioBucketPool: the user-supplied
// priority (typically the optimisation bound) is mapped onto small
// bucket indices as its distance from the root's bound, owners push
// and pop their own shard without contention, and an idle worker robs
// its siblings best-priority-first — the same layout the ordered
// pool-based coordinations use, replacing the single global mutex+heap
// this coordination was originally built on (5× slower per push/pop
// and a scaling bottleneck with every worker on one lock).

// BestFirstOpt runs an optimisation search with best-bound-first task
// scheduling. The priority of a spawned subtree is p.Bound of its
// root, so globally promising regions are searched early, which finds
// strong incumbents fast and amplifies pruning. Requires p.Bound.
func BestFirstOpt[S, N any](space S, root N, p OptProblem[S, N], cfg Config) OptResult[N] {
	if p.Bound == nil {
		panic("core: BestFirstOpt requires a Bound function")
	}
	cfg = cfg.withDefaults()
	fab := newLoopbackFabric[N](cfg)
	defer fab.close()
	m := newMetrics(cfg.Workers)
	cancel := newCanceller()
	inc := newIncumbent[N](fab.trs)
	fab.bounds = inc
	locOf := make([]int, cfg.Workers)
	for w := range locOf {
		locOf[w] = w % cfg.Localities
	}
	vs := newOptVisitors(space, p, inc, m, locOf)
	fab.start(cancel)
	start := time.Now()
	runBestFirst(space, p.Gen, func(n N) int64 { return p.Bound(space, n) }, cfg, m, cancel, vs, root)
	stats := m.total()
	stats.Elapsed = time.Since(start)
	stats.Broadcasts = inc.broadcasts()
	node, obj, has := inc.result()
	return OptResult[N]{Best: node, Objective: obj, Found: has, Stats: stats}
}

// runBestFirst drives workers over a per-worker-sharded priority pool.
// Tasks run depth-first for cfg.Budget backtracks; on exhaustion the
// bottom-most generator is drained back into the worker's shard,
// prioritised by each subtree root's own bound (bucketed as distance
// from the root bound: lower bucket = stronger bound = runs earlier).
func runBestFirst[S, N any](space S, gf GenFactory[S, N], prio func(N) int64, cfg Config, m *Metrics, cancel *canceller, visitors []visitor[N], root N) {
	ref := prio(root)
	taskPrio := func(n N) int32 { return clampPrio(ref - prio(n)) }
	pool := NewShardedPool[N](PrioBucketKind, cfg.Workers)
	pk := newParker(cfg.Workers)
	tr := newTracker()
	tr.add(1)
	pool.Shard(0).Push(Task[N]{Node: root, Depth: 0, Prio: taskPrio(root)})
	caches := newGenCaches(space, gf, cfg)
	scratch := newWorkerScratch[N](cfg.Workers)

	runTask := func(w int, v visitor[N], sh *WorkerStats, t Task[N]) {
		if trc := cfg.Trace; trc != nil {
			start := time.Now()
			defer func() { trc.record(w, t.Depth, start, time.Now()) }()
		}
		defer tr.finish()
		if cancel.cancelled() {
			return
		}
		if v.visit(t.Node) != descend {
			return
		}
		gc := caches[w]
		sc := scratch[w]
		stack := sc.stack[:0]
		defer func() { sc.stack = stack[:0] }()
		stack = append(stack, gc.gen(0, t.Node))
		backtracks := int64(0)
		for len(stack) > 0 {
			if cancel.cancelled() {
				return
			}
			if backtracks >= cfg.Budget {
				for i := 0; i < len(stack); i++ {
					if stack[i].HasNext() {
						for stack[i].HasNext() {
							child := stack[i].Next()
							tr.add(1)
							sh.Spawns++
							cp := taskPrio(child)
							sh.notePrio(cp)
							pool.Shard(w).Push(Task[N]{Node: child, Depth: t.Depth + i + 1, Prio: cp})
							pk.wake()
						}
						break
					}
				}
				backtracks = 0
				continue
			}
			g := stack[len(stack)-1]
			if !g.HasNext() {
				stack[len(stack)-1] = nil
				stack = stack[:len(stack)-1]
				sh.Backtracks++
				backtracks++
				continue
			}
			child := g.Next()
			switch v.visit(child) {
			case descend:
				stack = append(stack, gc.gen(len(stack), child))
			case pruneLevel:
				stack[len(stack)-1] = nil
				stack = stack[:len(stack)-1]
				sh.Backtracks++
				backtracks++
			}
		}
	}

	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			v := visitors[w]
			sh := m.shard(w)
			timer := newParkTimer()
			defer timer.Stop()
			idle := 0
			for {
				if cancel.cancelled() {
					return
				}
				t, ok := pool.Shard(w).Pop()
				if !ok {
					if t, ok = pool.StealExcept(w); ok {
						sh.LocalSteals++
					}
				}
				if ok {
					idle = 0
					runTask(w, v, sh, t)
					continue
				}
				select {
				case <-tr.done:
					return
				case <-cancel.ch:
					return
				default:
				}
				idle++
				if idle <= 8 {
					runtime.Gosched()
					continue
				}
				backoff := idle - 9
				if backoff > 5 {
					backoff = 5
				}
				pk.park(timer, 20*time.Microsecond<<uint(backoff), tr.done, cancel.ch,
					func() bool { return pool.Size() == 0 })
			}
		}(w)
	}
	wg.Wait()
}
