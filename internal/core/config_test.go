package core

import (
	"runtime"
	"testing"
	"testing/quick"
)

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Workers != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers = %d", c.Workers)
	}
	if c.Localities != 1 || c.DCutoff != 1 || c.Budget != 10_000 || c.Seed != 1 {
		t.Errorf("bad defaults: %+v", c)
	}
}

func TestConfigLocalitiesClamped(t *testing.T) {
	c := Config{Workers: 3, Localities: 10}.withDefaults()
	if c.Localities != 3 {
		t.Errorf("Localities = %d, want clamped to 3", c.Localities)
	}
}

func TestConfigUserValuesKept(t *testing.T) {
	c := Config{Workers: 5, Localities: 2, DCutoff: 7, Budget: 99, Seed: 42}.withDefaults()
	if c.Workers != 5 || c.Localities != 2 || c.DCutoff != 7 || c.Budget != 99 || c.Seed != 42 {
		t.Errorf("defaults overwrote user values: %+v", c)
	}
}

// Property: pools never lose or duplicate tasks under random sequences
// of push/pop/steal, against a multiset reference model.
func TestQuickPoolsAgainstModel(t *testing.T) {
	for _, kind := range []PoolKind{DepthPoolKind, DequeKind} {
		kind := kind
		f := func(ops []uint8) bool {
			p := newPool[int](kind)
			inPool := map[int]int{} // task id -> count
			next := 0
			for _, op := range ops {
				switch op % 3 {
				case 0:
					p.Push(Task[int]{Node: next, Depth: int(op) % 5})
					inPool[next]++
					next++
				case 1:
					if task, ok := p.Pop(); ok {
						if inPool[task.Node] != 1 {
							return false
						}
						delete(inPool, task.Node)
					} else if len(inPool) != 0 {
						return false
					}
				case 2:
					if task, ok := p.Steal(); ok {
						if inPool[task.Node] != 1 {
							return false
						}
						delete(inPool, task.Node)
					} else if len(inPool) != 0 {
						return false
					}
				}
			}
			if p.Size() != len(inPool) {
				return false
			}
			for {
				task, ok := p.Pop()
				if !ok {
					break
				}
				if inPool[task.Node] != 1 {
					return false
				}
				delete(inPool, task.Node)
			}
			return len(inPool) == 0
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
			t.Fatalf("pool kind %d: %v", kind, err)
		}
	}
}

func TestMetricsTotalSumsShards(t *testing.T) {
	m := newMetrics(3)
	m.shard(0).Nodes = 5
	m.shard(1).Nodes = 7
	m.shard(2).Prunes = 2
	m.shard(2).Spawns = 4
	s := m.total()
	if s.Nodes != 12 || s.Prunes != 2 || s.Spawns != 4 || s.Workers != 3 {
		t.Errorf("total = %+v", s)
	}
}
