package dist

import (
	"sync"
	"time"
)

// Chaos harness: a declarative schedule of rank deaths, reusable
// across the fault-injection surfaces the repo already has — the
// loopback network's Kill, a subprocess deployment's SIGKILL, or any
// other func(rank). Tests and experiments describe WHAT dies WHEN;
// the harness owns the timers, so a chaos scenario reads as data:
//
//	stop := dist.ChaosPlan{Kills: []dist.ChaosKill{
//		{Rank: 0, After: 30 * time.Millisecond},
//		{Rank: 2, After: 60 * time.Millisecond},
//	}}.Start(func(rank int) { procs[rank].Kill() })
//	defer stop()
//
// The harness deliberately has no liveness opinions: killing an
// already-dead rank must be a no-op of the injected kill func (both
// LoopbackNetwork.Kill and process SIGKILL are idempotent).

// ChaosKill schedules one rank's death.
type ChaosKill struct {
	Rank  int           // who dies
	After time.Duration // measured from ChaosPlan.Start
}

// ChaosPlan is a schedule of deaths to inject into a deployment.
type ChaosPlan struct {
	Kills []ChaosKill
}

// Start arms the plan: each kill fires on its own timer, calling the
// injected kill func with the victim's rank. The returned stop func
// cancels any kills still pending (already-fired ones are history)
// and waits for in-flight kill callbacks to return; it is safe to
// call more than once.
func (p ChaosPlan) Start(kill func(rank int)) (stop func()) {
	var wg sync.WaitGroup
	timers := make([]*time.Timer, 0, len(p.Kills))
	for _, k := range p.Kills {
		k := k
		wg.Add(1)
		timers = append(timers, time.AfterFunc(k.After, func() {
			defer wg.Done()
			kill(k.Rank)
		}))
	}
	var cancelOnce sync.Once
	return func() {
		cancelOnce.Do(func() {
			for _, t := range timers {
				if t.Stop() {
					wg.Done() // never fired, never will
				}
			}
		})
		wg.Wait()
	}
}
