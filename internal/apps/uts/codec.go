package uts

import (
	"crypto/sha1"
	"encoding/binary"
	"fmt"

	"yewpar/internal/core"
)

// nodeCodec is the compact wire form of a UTS node: the 20 raw SHA-1
// descriptor bytes followed by the depth as a uvarint.
type nodeCodec struct{}

// Codec returns the compact Node codec used by the distributed mode.
func Codec() core.Codec[Node] { return nodeCodec{} }

// Encode implements core.Codec.
func (c nodeCodec) Encode(n Node) ([]byte, error) { return c.EncodeTo(nil, n) }

// EncodeTo implements core.Codec.
func (nodeCodec) EncodeTo(dst []byte, n Node) ([]byte, error) {
	dst = append(dst, n.H[:]...)
	dst = binary.AppendUvarint(dst, uint64(n.Depth))
	return dst, nil
}

// Decode implements core.Codec.
func (nodeCodec) Decode(b []byte) (Node, error) {
	var n Node
	if len(b) < sha1.Size {
		return n, fmt.Errorf("uts: truncated node descriptor")
	}
	copy(n.H[:], b)
	b = b[sha1.Size:]
	depth, k := binary.Uvarint(b)
	if k <= 0 {
		return n, fmt.Errorf("uts: truncated depth")
	}
	if len(b) != k {
		return n, fmt.Errorf("uts: %d trailing bytes after node", len(b)-k)
	}
	n.Depth = int(depth)
	return n, nil
}
