package dist

import (
	"math/rand"
	"sync"
	"time"
)

// Deterministic network fault injection, netem-style. A FaultPlan is a
// transport wrapper: the loopback network and the TCP framing layer
// consult it around every frame they move, so conformance and chaos
// suites can drive latency, loss, duplication, corruption, reordering,
// and scheduled partitions reproducibly from a seed — no root, no tc,
// no real packet loss. It composes with ChaosPlan (process kills):
// ChaosPlan schedules *who dies*, FaultPlan *which links lie*.
//
// Faults are injected on the sending side, after the clean frame has
// been captured by the session's retransmit log. With LinkGrace > 0
// every injected fault is therefore recoverable — a drop or corrupt
// frame costs one resume round trip — while with grace 0 the injector
// reproduces exactly what a real flaky network does to a crash-stop
// deployment: escalation to the death path.

// LinkFault describes the noise on one (or the default) link.
type LinkFault struct {
	Latency time.Duration // fixed per-frame delay
	Jitter  time.Duration // uniform extra delay in [0, Jitter)
	Drop    float64       // probability a frame is silently swallowed
	Dup     float64       // probability a frame is sent twice
	Corrupt float64       // probability a frame is bit-flipped in transit
	Reorder float64       // probability a frame is held behind its successor
}

// faultAction is one frame's rolled outcome.
type faultAction struct {
	delay   time.Duration
	drop    bool
	dup     bool
	corrupt bool
	reorder bool
}

// FaultPlan is a seeded, shared schedule of link faults for an
// in-process deployment. All methods are safe for concurrent use.
type FaultPlan struct {
	mu     sync.Mutex
	rng    *rand.Rand
	def    LinkFault
	links  map[[2]int]LinkFault
	part   map[int]bool // the active partition: severed iff sides differ
	onHeal []func()
}

// NewFaultPlan builds an empty plan; the seed fixes every later roll.
func NewFaultPlan(seed int64) *FaultPlan {
	return &FaultPlan{rng: rand.New(rand.NewSource(seed))}
}

// SetDefault applies f to every link without a specific override.
func (p *FaultPlan) SetDefault(f LinkFault) {
	p.mu.Lock()
	p.def = f
	p.mu.Unlock()
}

// SetLink applies f to the a↔b link (both directions).
func (p *FaultPlan) SetLink(a, b int, f LinkFault) {
	p.mu.Lock()
	if p.links == nil {
		p.links = make(map[[2]int]LinkFault)
	}
	p.links[[2]int{a, b}] = f
	p.mu.Unlock()
}

// Partition severs every link between ranks and the rest of the
// deployment. A positive duration schedules the Heal; zero leaves the
// partition in place until an explicit Heal. A new partition replaces
// the previous one.
func (p *FaultPlan) Partition(ranks []int, d time.Duration) {
	p.mu.Lock()
	p.part = make(map[int]bool, len(ranks))
	for _, r := range ranks {
		p.part[r] = true
	}
	p.mu.Unlock()
	if d > 0 {
		time.AfterFunc(d, p.Heal)
	}
}

// Heal removes the active partition and runs every queued heal
// callback (loopback deliveries deferred across the split).
func (p *FaultPlan) Heal() {
	p.mu.Lock()
	p.part = nil
	cbs := p.onHeal
	p.onHeal = nil
	p.mu.Unlock()
	for _, fn := range cbs {
		fn()
	}
}

// Severed reports whether the a↔b link is cut by the active partition.
func (p *FaultPlan) Severed(a, b int) bool {
	if p == nil {
		return false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.part != nil && p.part[a] != p.part[b]
}

// OnHeal queues fn for the next Heal — or runs it now when no
// partition is active.
func (p *FaultPlan) OnHeal(fn func()) {
	p.mu.Lock()
	if p.part == nil {
		p.mu.Unlock()
		fn()
		return
	}
	p.onHeal = append(p.onHeal, fn)
	p.mu.Unlock()
}

// act rolls one frame's fate on the a→b link; true means severed.
func (p *FaultPlan) act(a, b int) (faultAction, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.part != nil && p.part[a] != p.part[b] {
		return faultAction{}, true
	}
	lf, ok := p.links[[2]int{a, b}]
	if !ok {
		lf, ok = p.links[[2]int{b, a}]
	}
	if !ok {
		lf = p.def
	}
	var act faultAction
	act.delay = lf.Latency
	if lf.Jitter > 0 {
		act.delay += time.Duration(p.rng.Int63n(int64(lf.Jitter)))
	}
	act.drop = lf.Drop > 0 && p.rng.Float64() < lf.Drop
	act.dup = lf.Dup > 0 && p.rng.Float64() < lf.Dup
	act.corrupt = lf.Corrupt > 0 && p.rng.Float64() < lf.Corrupt
	act.reorder = lf.Reorder > 0 && p.rng.Float64() < lf.Reorder
	return act, false
}

// latency returns the rolled delay alone (the loopback network's
// steals are synchronous calls; only the delay applies).
func (p *FaultPlan) latency(a, b int) time.Duration {
	act, _ := p.act(a, b)
	return act.delay
}
