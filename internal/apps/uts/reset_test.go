package uts

import (
	"testing"

	"yewpar/internal/core"
)

func testSpace() *Space {
	return &Space{Shape: Binomial, B0: 6, M: 4, Q: 0.23, Seed: 42}
}

func TestResetMatchesFresh(t *testing.T) {
	s := testSpace()
	nodes := []Node{Root(s)}
	for i := 0; i < len(nodes) && len(nodes) < 500; i++ {
		g := Gen(s, nodes[i])
		for g.HasNext() && len(nodes) < 500 {
			nodes = append(nodes, g.Next())
		}
	}
	shared := &gen{}
	for _, parent := range nodes {
		shared.Reset(s, parent)
		fresh := Gen(s, parent)
		for fresh.HasNext() {
			if !shared.HasNext() {
				t.Fatal("recycled generator ran dry early")
			}
			if got, want := shared.Next(), fresh.Next(); got != want {
				t.Fatalf("recycled child %+v, fresh %+v", got, want)
			}
		}
		if shared.HasNext() {
			t.Fatal("recycled generator has extra children")
		}
	}
}

func TestCountRecyclingAblation(t *testing.T) {
	s := testSpace()
	on, onStats := Count(s, core.Sequential, core.Config{})
	off, offStats := Count(s, core.Sequential, core.Config{NoRecycle: true})
	if on != off {
		t.Fatalf("tree size with recycling %d, without %d", on, off)
	}
	if onStats.Nodes != offStats.Nodes {
		t.Fatalf("recycling changed the explored tree: %d vs %d nodes", onStats.Nodes, offStats.Nodes)
	}
}
