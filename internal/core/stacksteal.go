package core

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// stealReq is a thief's request for work. The victim replies exactly
// once on resp with a (possibly empty) batch of tasks; resp is buffered
// so victims never block.
type stealReq[N any] struct {
	resp chan []Task[N]
}

// ssWorker is one Stack-Stealing worker's communication endpoint.
type ssWorker[N any] struct {
	reqs    chan stealReq[N]
	serving atomic.Bool // true while running a search (has a stack to split)
}

// ssState is the shared state of one Stack-Stealing run.
type ssState[S, N any] struct {
	space    S
	gf       GenFactory[S, N]
	cfg      Config
	metrics  *Metrics
	tr       *tracker
	cancel   *canceller
	ws       []*ssWorker[N]
	visitors []visitor[N]
	locOf    []int
	caches   []*genCache[S, N] // per-worker generator recycling caches
}

// runStackStealing is the Stack-Stealing coordination of Listing 3,
// implementing the (spawn-stack) rule: work is split only on demand,
// when an idle thief asks a victim, which scans its generator stack
// bottom-up and hands over the first unexplored node (or all nodes at
// that lowest depth when Chunked). Thieves steal directly from victims
// over channels — there is no workpool; the response channel plays the
// transit-buffer role the semantics gives the task queue. Initial work
// is pushed: the root's children are distributed round-robin.
func runStackStealing[S, N any](space S, gf GenFactory[S, N], cfg Config, metrics *Metrics, cancel *canceller, visitors []visitor[N], root N) {
	st := &ssState[S, N]{
		space:    space,
		gf:       gf,
		cfg:      cfg,
		metrics:  metrics,
		tr:       newTracker(),
		cancel:   cancel,
		ws:       make([]*ssWorker[N], cfg.Workers),
		visitors: visitors,
		locOf:    make([]int, cfg.Workers),
		caches:   newGenCaches(space, gf, cfg),
	}
	for i := range st.ws {
		st.ws[i] = &ssWorker[N]{reqs: make(chan stealReq[N], cfg.Workers)}
		st.locOf[i] = i % cfg.Localities
	}

	// Visit the root on the coordinator, then work-push its children.
	sh0 := metrics.shard(0)
	initial := make([][]Task[N], cfg.Workers)
	count := 0
	if visitors[0].visit(root) == descend && !cancel.cancelled() {
		g := gf(space, root)
		for g.HasNext() {
			child := g.Next()
			st.tr.add(1)
			sh0.Spawns++
			initial[count%cfg.Workers] = append(initial[count%cfg.Workers], Task[N]{Node: child, Depth: 1})
			count++
		}
	}
	if count == 0 {
		return
	}

	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			st.worker(w, initial[w])
		}(w)
	}
	wg.Wait()
}

func (st *ssState[S, N]) worker(w int, initial []Task[N]) {
	me := st.ws[w]
	v := st.visitors[w]
	sh := st.metrics.shard(w)
	for _, t := range initial {
		st.search(w, me, v, sh, t)
	}
	st.stealLoop(w, me, v, sh)
	st.drainRequests(me)
}

// stealLoop is the thief side: pick a random serving victim (local
// locality preferred, remote charged StealLatency), send a request,
// and run whatever comes back. While waiting, keep answering our own
// incoming requests with "no work" so thieves never deadlock on each
// other.
func (st *ssState[S, N]) stealLoop(w int, me *ssWorker[N], v visitor[N], sh *WorkerStats) {
	r := rand.New(rand.NewSource(st.cfg.Seed + 7919*int64(w) + 13))
	idle := 0
	for {
		st.drainRequests(me)
		if st.cancel.cancelled() || st.tr.quiescent() {
			return
		}
		victim := st.pickVictim(w, r)
		if victim < 0 {
			idle++
			st.backoff(idle)
			continue
		}
		req := stealReq[N]{resp: make(chan []Task[N], 1)}
		select {
		case st.ws[victim].reqs <- req:
		default:
			idle++
			st.backoff(idle)
			continue
		}
		waiting := true
		for waiting {
			select {
			case ts := <-req.resp:
				waiting = false
				if len(ts) == 0 {
					sh.StealsFail++
					idle++
					st.backoff(idle)
					break
				}
				sh.StealsOK++
				idle = 0
				for _, t := range ts {
					st.search(w, me, v, sh, t)
				}
			case <-st.tr.done:
				// Tasks can never be stranded in req.resp here: a
				// victim registers handed-over tasks with the tracker
				// before replying, so live work keeps done open.
				return
			case <-st.cancel.ch:
				return
			case other := <-me.reqs:
				other.resp <- nil
			}
		}
	}
}

func (st *ssState[S, N]) backoff(idle int) {
	if idle > 16 {
		time.Sleep(20 * time.Microsecond)
	} else {
		runtime.Gosched()
	}
}

// pickVictim chooses a random victim that is currently serving,
// preferring the thief's own locality; remote picks are charged the
// simulated steal latency.
func (st *ssState[S, N]) pickVictim(w int, r *rand.Rand) int {
	var locals, remotes []int
	for i := range st.ws {
		if i == w || !st.ws[i].serving.Load() {
			continue
		}
		if st.locOf[i] == st.locOf[w] {
			locals = append(locals, i)
		} else {
			remotes = append(remotes, i)
		}
	}
	if len(locals) > 0 {
		return locals[r.Intn(len(locals))]
	}
	if len(remotes) > 0 {
		if st.cfg.StealLatency > 0 {
			time.Sleep(st.cfg.StealLatency)
		}
		return remotes[r.Intn(len(remotes))]
	}
	return -1
}

// search is the victim side (Listing 3): a sequential backtracking
// search that polls for steal requests on every expansion step.
func (st *ssState[S, N]) search(w int, me *ssWorker[N], v visitor[N], sh *WorkerStats, t Task[N]) {
	if tr := st.cfg.Trace; tr != nil {
		start := time.Now()
		defer func() { tr.record(w, t.Depth, start, time.Now()) }()
	}
	defer st.tr.finish()
	me.serving.Store(true)
	defer me.serving.Store(false)
	if st.cancel.cancelled() {
		return
	}
	if v.visit(t.Node) != descend {
		return
	}
	// Generators are recycled per stack level; split() drains node
	// values out of them, so handed-over work never aliases the cache.
	gc := st.caches[w]
	stack := make([]NodeGenerator[N], 0, 32)
	stack = append(stack, gc.gen(0, t.Node))
	for len(stack) > 0 {
		if st.cancel.cancelled() {
			return
		}
		select {
		case req := <-me.reqs:
			req.resp <- st.split(stack, t.Depth, sh)
		default:
		}
		g := stack[len(stack)-1]
		if !g.HasNext() {
			stack[len(stack)-1] = nil
			stack = stack[:len(stack)-1]
			sh.Backtracks++
			continue
		}
		child := g.Next()
		switch v.visit(child) {
		case descend:
			stack = append(stack, gc.gen(len(stack), child))
		case pruneLevel:
			stack[len(stack)-1] = nil
			stack = stack[:len(stack)-1]
			sh.Backtracks++
		}
	}
}

// split scans the generator stack bottom-up — nodes closest to the
// root first — and hands over the first unexplored node, or the whole
// remaining lowest generator when Chunked. Handed-over tasks are
// registered with the tracker before they leave the victim.
func (st *ssState[S, N]) split(stack []NodeGenerator[N], rootDepth int, sh *WorkerStats) []Task[N] {
	for i, g := range stack {
		if !g.HasNext() {
			continue
		}
		var ts []Task[N]
		if st.cfg.Chunked {
			for g.HasNext() {
				ts = append(ts, Task[N]{Node: g.Next(), Depth: rootDepth + i + 1})
			}
		} else {
			ts = append(ts, Task[N]{Node: g.Next(), Depth: rootDepth + i + 1})
		}
		st.tr.add(int64(len(ts)))
		sh.Spawns += int64(len(ts))
		return ts
	}
	return nil
}

// drainRequests answers all pending steal requests with "no work".
func (st *ssState[S, N]) drainRequests(me *ssWorker[N]) {
	for {
		select {
		case req := <-me.reqs:
			req.resp <- nil
		default:
			return
		}
	}
}
