package core

import (
	"runtime"
	"sync"
	"time"
)

// engine bundles the runtime substrate shared by the pool-based
// parallel coordinations (Depth-Bounded and Budget): the locality
// fabric and its workpool topology, global task accounting for
// termination detection, canceller for decision short-circuits, and
// per-worker metrics.
type engine[S, N any] struct {
	space   S
	gf      GenFactory[S, N]
	cfg     Config
	metrics *Metrics
	cancel  *canceller
	fab     *fabric[N]
	topo    *topology[N]
	caches  []*genCache[S, N] // per-worker generator recycling caches
}

func newEngine[S, N any](space S, gf GenFactory[S, N], cfg Config, metrics *Metrics, cancel *canceller, fab *fabric[N]) *engine[S, N] {
	return &engine[S, N]{
		space:   space,
		gf:      gf,
		cfg:     cfg,
		metrics: metrics,
		cancel:  cancel,
		fab:     fab,
		topo:    newTopology(fab, cfg),
		caches:  newGenCaches(space, gf, cfg),
	}
}

// spawnTask registers a new task with the global live count (before it
// becomes visible to any worker) and pushes it on w's locality pool.
func (e *engine[S, N]) spawnTask(w int, sh *WorkerStats, t Task[N]) {
	e.fab.trs[e.topo.locality(w)].AddTasks(1)
	sh.Spawns++
	e.topo.push(w, t)
}

// finishTask deregisters one completed task. Every task obtained by a
// worker must be finished exactly once, after any children it spawns
// are registered.
func (e *engine[S, N]) finishTask(w int) {
	e.fab.trs[e.topo.locality(w)].AddTasks(-1)
}

// runPoolWorkers seeds the root task (on the locality that owns the
// root) and runs cfg.Workers workers, each executing runTask on every
// task it obtains, until global termination or cancellation. runTask
// must call e.finishTask exactly once per task and register any tasks
// it spawns with e.spawnTask.
func (e *engine[S, N]) runPoolWorkers(root N, visitors []visitor[N], runTask func(w int, v visitor[N], sh *WorkerStats, t Task[N])) {
	if tr := e.cfg.Trace; tr != nil {
		inner := runTask
		runTask = func(w int, v visitor[N], sh *WorkerStats, t Task[N]) {
			start := time.Now()
			inner(w, v, sh, t)
			tr.record(w, t.Depth, start, time.Now())
		}
	}
	if e.fab.hasRoot {
		e.fab.trs[0].AddTasks(1)
		e.topo.pools[0].Push(Task[N]{Node: root, Depth: 0})
	}
	done := e.fab.trs[0].Done()

	// Idle backoff: bound busy-wait cost while keeping steal response
	// far below task granularity. Over a wire transport each failed
	// steal round already costs network round trips, so idle probing
	// backs off harder to spare the coordinator.
	idleSleep := 20 * time.Microsecond
	if e.fab.wire {
		idleSleep = 500 * time.Microsecond
	}

	var wg sync.WaitGroup
	for w := 0; w < e.cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			v := visitors[w]
			sh := e.metrics.shard(w)
			idle := 0
			for {
				if e.cancel.cancelled() {
					return
				}
				t, ok := e.topo.popOrSteal(w, sh)
				if ok {
					idle = 0
					runTask(w, v, sh, t)
					continue
				}
				select {
				case <-done:
					return
				case <-e.cancel.ch:
					return
				default:
				}
				idle++
				if idle > 64 {
					time.Sleep(idleSleep)
				} else {
					runtime.Gosched()
				}
			}
		}(w)
	}
	wg.Wait()
}
