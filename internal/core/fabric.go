package core

import (
	"fmt"
	"math"

	"yewpar/internal/dist"
)

// boundSink is the incumbent's knowledge-management face as the fabric
// sees it: a per-locality monotonic bound cache.
type boundSink interface {
	localBest(loc int) int64
	applyRemote(loc int, obj int64)
}

// fabric binds the engine to its communication substrate: one
// dist.Transport per in-process locality. Single-process runs host all
// localities on a loopback network (newLoopbackFabric); a distributed
// process hosts exactly one locality whose transport reaches the other
// OS processes (newDistFabric). Everything above the fabric — pools,
// visitors, coordinations — is identical in both deployments.
type fabric[N any] struct {
	trs   []dist.Transport // in-process localities, parallel to locs
	locs  []*locState[N]
	codec Codec[N]
	wire  bool // tasks leave the process: encode on steal hand-over
	// hasRoot marks the locality that seeds the search root (the
	// coordinator); every in-process run has it.
	hasRoot bool
	size    int // global locality count across all processes

	bounds boundSink  // set for optimisation searches
	cancel *canceller // set at start
	net    *dist.LoopbackNetwork
}

// newLoopbackFabric builds the single-process fabric: cfg.Localities
// localities on a loopback network with the configured steal and bound
// latencies. This is what subsumes the old simulated topology — the
// same Transport path a cluster run uses, minus the serialisation.
func newLoopbackFabric[N any](cfg Config) *fabric[N] {
	net := dist.NewLoopback(cfg.Localities, dist.LoopbackOptions{
		StealLatency: cfg.StealLatency,
		BoundLatency: cfg.BoundLatency,
	})
	f := &fabric[N]{
		trs:     net.Transports(),
		hasRoot: true,
		size:    cfg.Localities,
		net:     net,
	}
	for i := range f.trs {
		f.locs = append(f.locs, &locState[N]{idx: i, rank: i, fab: f})
	}
	return f
}

// newDistFabric builds one distributed process's fabric: a single
// locality on the given transport, encoding stolen tasks with codec.
// Only the coordinator (rank 0) seeds the root.
func newDistFabric[N any](tr dist.Transport, codec Codec[N]) *fabric[N] {
	f := &fabric[N]{
		trs:     []dist.Transport{tr},
		codec:   codec,
		wire:    true,
		hasRoot: tr.Rank() == 0,
		size:    tr.Size(),
	}
	f.locs = []*locState[N]{{idx: 0, rank: tr.Rank(), fab: f}}
	return f
}

// start attaches the localities to their transports and wires the
// canceller's broadcast. Must run after pools are installed (engine
// construction) and before any search worker starts.
func (f *fabric[N]) start(cancel *canceller) {
	f.cancel = cancel
	cancel.bcast = func() { f.trs[0].Cancel() }
	for i, tr := range f.trs {
		tr.Start(f.locs[i])
	}
}

// close releases an owned loopback network. Distributed transports are
// owned by the caller (they outlive the search for result gathering).
func (f *fabric[N]) close() {
	if f.net != nil {
		f.net.Close()
	}
}

// wireStats folds the transport-level traffic counters of this
// process's localities into s. Call after all workers have joined.
func (f *fabric[N]) wireStats(s *Stats) {
	for _, tr := range f.trs {
		if m, ok := tr.(dist.Meter); ok {
			ws := m.Wire()
			s.Frames += ws.FramesSent
			s.WireBytes += ws.BytesSent
			s.BatchTasks += ws.StealTasks
			s.BatchReplies += ws.StealReplies
		}
	}
}

// locState is one in-process locality's engine endpoint: the
// dist.Handler serving its peers. The pool is installed by the engine
// before the fabric starts; coordinations without pools (sequential,
// stack-stealing) simply serve no transport steals.
type locState[N any] struct {
	idx  int // index among in-process localities
	rank int // global rank
	pool Pool[N]
	fab  *fabric[N]
	// wake, when set (by the engine's topology), releases a parked
	// worker of this locality after work arrives from outside the
	// worker loops — an adopted late steal reply or batch extra.
	wake func()
}

var _ dist.Handler = (*locState[string])(nil)
var _ dist.MultiStealer = (*locState[string])(nil)
var _ dist.StealRanker = (*locState[string])(nil)

// ServeSteal implements dist.Handler: hand the thief the shallowest
// spare task, stamped with this locality's current bound so the thief
// prunes with knowledge at least as fresh as the victim's.
func (h *locState[N]) ServeSteal(thief int) (dist.WireTask, bool) {
	if h.pool == nil {
		return dist.WireTask{}, false
	}
	t, ok := h.pool.Steal()
	if !ok {
		return dist.WireTask{}, false
	}
	wt := dist.WireTask{Depth: t.Depth, Prio: int(t.Prio), Bound: math.MinInt64}
	if b := h.fab.bounds; b != nil {
		wt.Bound = b.localBest(h.idx)
	}
	if h.fab.wire {
		bs, err := h.fab.codec.EncodeTo(nil, t.Node)
		if err != nil {
			// An unencodable node is a deployment bug; keep the task
			// rather than lose it, and let the thief look elsewhere.
			h.pool.Push(t)
			return dist.WireTask{}, false
		}
		wt.Payload = bs
	} else {
		wt.Local = t
	}
	return wt, true
}

// ServeStealMulti implements dist.MultiStealer for transports whose
// steal replies carry batches, under a steal-half policy: one exchange
// never takes more than half of the victim's backlog (rounded up, so a
// single spare task still travels), keeping a batching thief from
// starving the locality that is actually producing work. On a wire
// fabric the whole batch is encoded into one backing buffer through
// the codec's append path — one allocation per reply, not per task.
func (h *locState[N]) ServeStealMulti(thief, max int) []dist.WireTask {
	if h.pool == nil {
		return nil
	}
	if half := (h.pool.Size() + 1) / 2; max > half {
		max = half
	}
	if max < 1 {
		max = 1
	}
	if !h.fab.wire {
		var out []dist.WireTask
		for len(out) < max {
			wt, ok := h.ServeSteal(thief)
			if !ok {
				break
			}
			out = append(out, wt)
		}
		return out
	}
	bound := int64(math.MinInt64)
	if b := h.fab.bounds; b != nil {
		bound = b.localBest(h.idx)
	}
	// Offsets, not subslices, while encoding: append growth may move
	// the backing array, and payloads are sliced out only at the end.
	type span struct{ start, end, depth, prio int }
	var backing []byte
	var spans []span
	for len(spans) < max {
		t, ok := h.pool.Steal()
		if !ok {
			break
		}
		nb, err := h.fab.codec.EncodeTo(backing, t.Node)
		if err != nil {
			h.pool.Push(t)
			break
		}
		spans = append(spans, span{start: len(backing), end: len(nb), depth: t.Depth, prio: int(t.Prio)})
		backing = nb
	}
	out := make([]dist.WireTask, len(spans))
	for i, sp := range spans {
		out[i] = dist.WireTask{
			Payload: backing[sp.start:sp.end:sp.end],
			Depth:   sp.depth,
			Prio:    sp.prio,
			Bound:   bound,
		}
	}
	return out
}

// BestStealPrio implements dist.StealRanker: the rank (priority under
// ordered scheduling, depth otherwise) of the best task a thief would
// get from this locality's pool. Transports piggyback it on outgoing
// frames so peers can pick the most promising victim.
func (h *locState[N]) BestStealPrio() (int, bool) {
	if h.pool == nil {
		return 0, false
	}
	if sr, ok := h.pool.(stealRanked); ok {
		r := sr.StealRank()
		if r < 0 {
			return 0, false
		}
		return r, true
	}
	if h.pool.Size() > 0 {
		return 0, true
	}
	return 0, false
}

// OnBound implements dist.Handler: merge a peer's bound into the local
// cache (monotonically — late deliveries are harmless).
func (h *locState[N]) OnBound(from int, obj int64) {
	if b := h.fab.bounds; b != nil {
		b.applyRemote(h.idx, obj)
	}
}

// OnCancel implements dist.Handler: latch the local short-circuit
// without re-broadcasting (the originator already reached everyone).
func (h *locState[N]) OnCancel(from int) {
	if c := h.fab.cancel; c != nil {
		c.cancelQuiet()
	}
}

// OnTask implements dist.Handler: adopt a stolen task whose steal
// request had already timed out when the reply arrived. It is still
// registered in the global live count, so it must run here or the
// search never terminates.
func (h *locState[N]) OnTask(wt dist.WireTask) {
	if h.pool == nil {
		return
	}
	if b := h.fab.bounds; b != nil && wt.Bound > math.MinInt64 {
		b.applyRemote(h.idx, wt.Bound)
	}
	if wt.Local != nil {
		h.pool.Push(wt.Local.(Task[N]))
	} else {
		n, err := h.fab.codec.Decode(wt.Payload)
		if err != nil {
			panic(fmt.Sprintf("core: decoding adopted task: %v", err))
		}
		h.pool.Push(Task[N]{Node: n, Depth: wt.Depth, Prio: int32(wt.Prio)})
	}
	if h.wake != nil {
		h.wake()
	}
}
