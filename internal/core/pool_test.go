package core

import (
	"sync"
	"testing"
)

func TestDepthPoolOwnerDeepestFirstFIFO(t *testing.T) {
	p := NewDepthPool[string]()
	p.Push(Task[string]{Node: "d2a", Depth: 2})
	p.Push(Task[string]{Node: "d1a", Depth: 1})
	p.Push(Task[string]{Node: "d1b", Depth: 1})
	p.Push(Task[string]{Node: "d0", Depth: 0})
	p.Push(Task[string]{Node: "d2b", Depth: 2})

	// Owner pops continue depth-first (deepest level first) but honour
	// the heuristic FIFO order among siblings at one level.
	want := []string{"d2a", "d2b", "d1a", "d1b", "d0"}
	for i, w := range want {
		task, ok := p.Pop()
		if !ok {
			t.Fatalf("pop %d: empty", i)
		}
		if task.Node != w {
			t.Fatalf("pop %d = %q, want %q", i, task.Node, w)
		}
	}
	if _, ok := p.Pop(); ok {
		t.Fatal("pool should be empty")
	}
}

func TestDepthPoolThiefShallowestFirstFIFO(t *testing.T) {
	p := NewDepthPool[string]()
	p.Push(Task[string]{Node: "d2a", Depth: 2})
	p.Push(Task[string]{Node: "d0a", Depth: 0})
	p.Push(Task[string]{Node: "d0b", Depth: 0})
	want := []string{"d0a", "d0b", "d2a"}
	for i, w := range want {
		task, ok := p.Steal()
		if !ok || task.Node != w {
			t.Fatalf("steal %d = %q/%v, want %q", i, task.Node, ok, w)
		}
	}
}

func TestDepthPoolInterleavedPushPop(t *testing.T) {
	p := NewDepthPool[int]()
	p.Push(Task[int]{Node: 1, Depth: 3})
	if task, _ := p.Pop(); task.Node != 1 {
		t.Fatal("wrong task")
	}
	// After draining depth 3, a later deeper push must win owner pops.
	p.Push(Task[int]{Node: 2, Depth: 5})
	p.Push(Task[int]{Node: 3, Depth: 1})
	if task, _ := p.Pop(); task.Node != 2 {
		t.Fatal("deep task should pop first for the owner")
	}
	if task, _ := p.Pop(); task.Node != 3 {
		t.Fatal("remaining task lost")
	}
	// And a shallow push after the max-hint rose must still be found.
	p.Push(Task[int]{Node: 4, Depth: 0})
	if task, ok := p.Pop(); !ok || task.Node != 4 {
		t.Fatal("shallow task lost after hint movement")
	}
}

func TestDepthPoolMixedPopSteal(t *testing.T) {
	p := NewDepthPool[int]()
	for d := 0; d < 4; d++ {
		p.Push(Task[int]{Node: d, Depth: d})
	}
	if task, _ := p.Pop(); task.Depth != 3 {
		t.Fatalf("owner got depth %d, want 3", task.Depth)
	}
	if task, _ := p.Steal(); task.Depth != 0 {
		t.Fatalf("thief got depth %d, want 0", task.Depth)
	}
	if task, _ := p.Pop(); task.Depth != 2 {
		t.Fatalf("owner got depth %d, want 2", task.Depth)
	}
	if task, _ := p.Steal(); task.Depth != 1 {
		t.Fatalf("thief got depth %d, want 1", task.Depth)
	}
	if p.Size() != 0 {
		t.Fatalf("Size = %d", p.Size())
	}
}

func TestDepthPoolSize(t *testing.T) {
	p := NewDepthPool[int]()
	if p.Size() != 0 {
		t.Fatal("fresh pool non-empty")
	}
	for i := 0; i < 10; i++ {
		p.Push(Task[int]{Node: i, Depth: i % 3})
	}
	if p.Size() != 10 {
		t.Fatalf("Size = %d", p.Size())
	}
	p.Pop()
	p.Steal()
	if p.Size() != 8 {
		t.Fatalf("Size = %d after two removals", p.Size())
	}
}

func TestDepthPoolStealPrefersShallow(t *testing.T) {
	p := NewDepthPool[string]()
	p.Push(Task[string]{Node: "deep", Depth: 9})
	p.Push(Task[string]{Node: "shallow", Depth: 1})
	task, ok := p.Steal()
	if !ok || task.Node != "shallow" {
		t.Fatalf("Steal = %v, want shallow", task.Node)
	}
	task, ok = p.Pop()
	if !ok || task.Node != "deep" {
		t.Fatalf("Pop = %v, want deep", task.Node)
	}
}

func TestDequeOwnerLIFOThiefFIFO(t *testing.T) {
	q := NewDeque[int]()
	for i := 1; i <= 4; i++ {
		q.Push(Task[int]{Node: i, Depth: 0})
	}
	if task, _ := q.Pop(); task.Node != 4 {
		t.Fatalf("owner pop = %d, want 4 (LIFO)", task.Node)
	}
	if task, _ := q.Steal(); task.Node != 1 {
		t.Fatalf("thief steal = %d, want 1 (FIFO)", task.Node)
	}
	if task, _ := q.Pop(); task.Node != 3 {
		t.Fatalf("owner pop = %d, want 3", task.Node)
	}
	if task, _ := q.Steal(); task.Node != 2 {
		t.Fatalf("thief steal = %d, want 2", task.Node)
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("deque should be empty")
	}
	if q.Size() != 0 {
		t.Fatalf("Size = %d", q.Size())
	}
}

func TestDequeEmptySteal(t *testing.T) {
	q := NewDeque[int]()
	if _, ok := q.Steal(); ok {
		t.Fatal("steal from empty deque succeeded")
	}
}

func poolConcurrencyCheck(t *testing.T, p Pool[int]) {
	t.Helper()
	const producers, perProducer = 4, 2000
	var wg sync.WaitGroup
	for i := 0; i < producers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < perProducer; j++ {
				p.Push(Task[int]{Node: i*perProducer + j, Depth: j % 7})
			}
		}(i)
	}
	seen := make([]bool, producers*perProducer)
	var mu sync.Mutex
	var cg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		cg.Add(1)
		go func(thief bool) {
			defer cg.Done()
			for {
				var task Task[int]
				var ok bool
				if thief {
					task, ok = p.Steal()
				} else {
					task, ok = p.Pop()
				}
				if ok {
					mu.Lock()
					if seen[task.Node] {
						t.Errorf("task %d delivered twice", task.Node)
					}
					seen[task.Node] = true
					mu.Unlock()
					continue
				}
				select {
				case <-stop:
					return
				default:
				}
			}
		}(i%2 == 0)
	}
	wg.Wait()
	for p.Size() > 0 {
	}
	close(stop)
	cg.Wait()
	mu.Lock()
	defer mu.Unlock()
	for i, s := range seen {
		if !s {
			t.Fatalf("task %d lost", i)
		}
	}
}

func TestDepthPoolConcurrent(t *testing.T) { poolConcurrencyCheck(t, NewDepthPool[int]()) }
func TestDequeConcurrent(t *testing.T)     { poolConcurrencyCheck(t, NewDeque[int]()) }
