package nqueens

import (
	"testing"

	"yewpar/internal/core"
)

func TestResetMatchesFresh(t *testing.T) {
	s := NewSpace(6)
	nodes := []Node{Root(s)}
	for i := 0; i < len(nodes) && len(nodes) < 600; i++ {
		g := Gen(s, nodes[i])
		for g.HasNext() && len(nodes) < 600 {
			nodes = append(nodes, g.Next())
		}
	}
	shared := &gen{}
	for _, parent := range nodes {
		shared.Reset(s, parent)
		fresh := Gen(s, parent)
		for fresh.HasNext() {
			if !shared.HasNext() {
				t.Fatalf("parent %+v: recycled generator ran dry early", parent)
			}
			if got, want := shared.Next(), fresh.Next(); got != want {
				t.Fatalf("parent %+v: recycled child %+v, fresh %+v", parent, got, want)
			}
		}
		if shared.HasNext() {
			t.Fatalf("parent %+v: recycled generator has extra children", parent)
		}
	}
	// Full boards and dead ends must reset to "no children".
	shared.Reset(s, Node{Row: s.N})
	if shared.HasNext() {
		t.Fatal("full board must have no children after Reset")
	}
}

func TestCountRecyclingAblation(t *testing.T) {
	on, onStats := Count(8, core.Sequential, core.Config{})
	off, offStats := Count(8, core.Sequential, core.Config{NoRecycle: true})
	if on != off || on != 92 {
		t.Fatalf("8-queens count with recycling %d, without %d, want 92", on, off)
	}
	if onStats.Nodes != offStats.Nodes {
		t.Fatalf("recycling changed the explored tree: %d vs %d nodes", onStats.Nodes, offStats.Nodes)
	}
}
