package core

import (
	"sync"
	"testing"

	"yewpar/internal/dist"
)

// The distributed entry points, exercised over a loopback network:
// each rank runs in its own goroutine with its own transport, codec
// round trips included (wire=true forces task serialisation even
// in-process, so the loopback run covers the same code paths as TCP).

// knapsack-like toy: maximise sum of chosen values under index bound.
type toySpace struct{ Vals []int64 }

type toyNode struct {
	Pos int
	Sum int64
}

func toyGen(s toySpace, p toyNode) NodeGenerator[toyNode] {
	var children []toyNode
	for i := p.Pos; i < len(s.Vals); i++ {
		children = append(children, toyNode{Pos: i + 1, Sum: p.Sum + s.Vals[i]})
	}
	return NewSliceGen(children)
}

func toyOptProblem() OptProblem[toySpace, toyNode] {
	return OptProblem[toySpace, toyNode]{
		Gen:       toyGen,
		Objective: func(_ toySpace, n toyNode) int64 { return n.Sum },
	}
}

func toySpace12() toySpace {
	return toySpace{Vals: []int64{3, -1, 4, -1, 5, -9, 2, -6, 5, 3, -5, 8}}
}

func runDistOptLoopback(t *testing.T, ranks int, coord Coordination, cfg Config) OptResult[toyNode] {
	t.Helper()
	net := dist.NewLoopback(ranks, dist.LoopbackOptions{})
	trs := net.Transports()
	defer net.Close()

	space := toySpace12()
	root := toyNode{}
	results := make([]OptResult[toyNode], ranks)
	errs := make([]error, ranks)
	var wg sync.WaitGroup
	for r := 0; r < ranks; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			results[r], errs[r] = DistOpt(trs[r], GobCodec[toyNode]{}, coord, space, root, toyOptProblem(), cfg)
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	return results[0]
}

func TestDistOptMatchesSequential(t *testing.T) {
	want := SequentialOpt(toySpace12(), toyNode{}, toyOptProblem())
	for _, coord := range []Coordination{DepthBounded, Budget, StackStealing} {
		got := runDistOptLoopback(t, 3, coord, Config{Workers: 2, DCutoff: 2, Budget: 8})
		if got.Objective != want.Objective {
			t.Errorf("%v: distributed objective %d, want %d", coord, got.Objective, want.Objective)
		}
		if !got.Found {
			t.Errorf("%v: no result found", coord)
		}
		if got.Stats.Workers != 6 {
			t.Errorf("%v: aggregated workers = %d, want 6", coord, got.Stats.Workers)
		}
		if got.Stats.Nodes < want.Stats.Nodes {
			t.Errorf("%v: aggregated nodes %d < sequential %d", coord, got.Stats.Nodes, want.Stats.Nodes)
		}
	}
}

func TestDistEnumCountsWholeTree(t *testing.T) {
	space := toySpace12()
	p := EnumProblem[toySpace, toyNode, int64]{
		Gen:       toyGen,
		Objective: func(toySpace, toyNode) int64 { return 1 },
		Monoid:    SumInt64{},
	}
	want := SequentialEnum(space, toyNode{}, p)

	net := dist.NewLoopback(3, dist.LoopbackOptions{})
	trs := net.Transports()
	defer net.Close()
	results := make([]EnumResult[int64], 3)
	errs := make([]error, 3)
	var wg sync.WaitGroup
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			results[r], errs[r] = DistEnum(trs[r], GobCodec[toyNode]{}, DepthBounded, space, toyNode{}, p, Config{Workers: 2, DCutoff: 2})
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	if results[0].Value != want.Value {
		t.Fatalf("distributed count %d, want %d", results[0].Value, want.Value)
	}
}

func TestDistDecideFindsWitness(t *testing.T) {
	space := toySpace12()
	p := DecisionProblem[toySpace, toyNode]{
		Gen:       toyGen,
		Objective: func(_ toySpace, n toyNode) int64 { return n.Sum },
		Target:    20,
	}
	net := dist.NewLoopback(2, dist.LoopbackOptions{})
	trs := net.Transports()
	defer net.Close()
	results := make([]DecisionResult[toyNode], 2)
	errs := make([]error, 2)
	var wg sync.WaitGroup
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			results[r], errs[r] = DistDecide(trs[r], GobCodec[toyNode]{}, DepthBounded, space, toyNode{}, p, Config{Workers: 2, DCutoff: 2})
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	if !results[0].Found {
		t.Fatal("witness with sum >= 20 exists but was not found")
	}
	if results[0].Objective < 20 {
		t.Fatalf("witness objective %d below target", results[0].Objective)
	}
}

// Ordered distributed searches: every order returns the same optimum
// through the full wire path (tasks serialise through the codec even
// on the loopback network, so Task.Prio rides WireTask.Prio), and the
// spawned-priority histogram accounts for every spawn across ranks.
func TestDistOptOrderedMatchesUnordered(t *testing.T) {
	p := toyOptProblem()
	// Admissible bound: current sum plus every positive value still
	// choosable. Needed for OrderBound to have a priority source.
	p.Bound = func(s toySpace, n toyNode) int64 {
		b := n.Sum
		for _, v := range s.Vals[min(n.Pos, len(s.Vals)):] {
			if v > 0 {
				b += v
			}
		}
		return b
	}
	want := SequentialOpt(toySpace12(), toyNode{}, p)
	for _, coord := range []Coordination{DepthBounded, Budget} {
		for _, ord := range []Order{OrderNone, OrderDiscrepancy, OrderBound} {
			cfg := Config{Workers: 2, DCutoff: 2, Budget: 8, Order: ord}
			net := dist.NewLoopback(3, dist.LoopbackOptions{})
			trs := net.Transports()
			space := toySpace12()
			results := make([]OptResult[toyNode], 3)
			errs := make([]error, 3)
			var wg sync.WaitGroup
			for r := 0; r < 3; r++ {
				wg.Add(1)
				go func(r int) {
					defer wg.Done()
					results[r], errs[r] = DistOpt(trs[r], GobCodec[toyNode]{}, coord, space, toyNode{}, p, cfg)
				}(r)
			}
			wg.Wait()
			net.Close()
			for r, err := range errs {
				if err != nil {
					t.Fatalf("%v/%v rank %d: %v", coord, ord, r, err)
				}
			}
			got := results[0]
			if !got.Found || got.Objective != want.Objective {
				t.Errorf("%v/%v: objective %d (found=%v), want %d", coord, ord, got.Objective, got.Found, want.Objective)
			}
			if ord != OrderNone && got.Stats.Spawns > 0 {
				hist := int64(0)
				for _, v := range got.Stats.PrioHist {
					hist += v
				}
				if hist != got.Stats.Spawns {
					t.Errorf("%v/%v: histogram covers %d of %d spawns", coord, ord, hist, got.Stats.Spawns)
				}
			}
		}
	}
}

func TestDistOptRejectsUnsupportedCoordination(t *testing.T) {
	net := dist.NewLoopback(2, dist.LoopbackOptions{})
	defer net.Close()
	_, err := DistOpt(net.Transports()[0], GobCodec[toyNode]{}, Sequential, toySpace12(), toyNode{}, toyOptProblem(), Config{})
	if err == nil {
		t.Fatal("sequential across processes should be rejected")
	}
}
