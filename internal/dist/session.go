package dist

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Link-fault tolerance: the v8 session layer. A wconn with a session
// attached survives the loss of its physical TCP connection: outgoing
// frames are sequence-stamped and copied into a bounded retransmit
// log, and on an I/O error the surviving sides keep the logical link
// alive for WireOptions.LinkGrace. The dialing side reconnects and
// offers a kResume handshake (session id + receive high-water mark);
// the accepting side parks its reader until the resume (or the grace
// timer) resolves the suspension. Both sides then retransmit exactly
// the frames the other missed, so steal replies, acks, deltas, and
// gossip cross a reconnect without tripping the ledger-replay or
// failover paths. A session that cannot resume inside the grace window
// breaks, collapsing the link to the pre-v8 death path — which is
// always safe, just more expensive.

// castagnoli is the CRC32C polynomial table of the v8 frame trailer.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// sessLogBudget bounds each session's retransmit log. Resuming past a
// trimmed entry is unrecoverable and breaks the session (death path):
// the budget trades memory against the burst size a reconnect can
// bridge, never against correctness.
const sessLogBudget = 4 << 20

// frameBuf is one pooled encoded-frame image. The session retransmit
// log recycles these through frameBufPool, so the steady-state send
// path stops paying one heap allocation per logged frame: a buffer is
// taken at appendLog and returned when its entry leaves the log — a
// budget trim, a resume's trimThrough, or the session breaking.
type frameBuf struct{ b []byte }

var frameBufPool = sync.Pool{New: func() any { return new(frameBuf) }}

func newFrameBuf(src []byte) *frameBuf {
	fb := frameBufPool.Get().(*frameBuf)
	fb.b = append(fb.b[:0], src...)
	return fb
}

func (fb *frameBuf) release() { frameBufPool.Put(fb) }

// resumeTimeout bounds one resume handshake exchange.
const resumeTimeout = 5 * time.Second

// connIO is the physical half of a wconn: one TCP connection and its
// read buffer. A resumable session swaps the whole pair on reconnect.
type connIO struct {
	c  net.Conn
	br *bufio.Reader
}

func newConnIO(c net.Conn) *connIO {
	return &connIO{c: c, br: bufio.NewReaderSize(c, 64<<10)}
}

// encodeFrame appends one length-prefixed v8 frame to dst[:0]: the
// body encoding of frame.go, the 4-byte little-endian link sequence,
// and a CRC32C over both. The length prefix covers body + trailer.
func encodeFrame(dst []byte, f *frame, seq uint32) []byte {
	buf := append(dst[:0], 0, 0, 0, 0)
	buf = appendFrame(buf, f)
	buf = binary.LittleEndian.AppendUint32(buf, seq)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf[4:], castagnoli))
	binary.LittleEndian.PutUint32(buf[:4], uint32(len(buf)-4))
	return buf
}

// readRawFrame reads and verifies one v8 frame, returning its link
// sequence and total wire size. A CRC mismatch is a connection
// failure, not a parse error: the stream can no longer be trusted.
// The body gets a dedicated allocation: blob and task payloads alias
// it and may be retained by the handler.
func readRawFrame(br *bufio.Reader, f *frame) (uint32, int, error) {
	seq, n, _, err := readRawFrameInto(br, f, nil)
	return seq, n, err
}

// readRawFrameInto is readRawFrame reading the frame image into buf
// (grown as needed) and returning the possibly-grown buffer. The
// caller owns the reuse decision: a frame whose Blob or Tasks are
// empty aliases nothing, so its buffer can back the next read; one
// that carries an aliasing payload must keep its buffer for as long
// as the handler may hold the payload.
func readRawFrameInto(br *bufio.Reader, f *frame, buf []byte) (uint32, int, []byte, error) {
	// Peek+Discard instead of ReadFull into a local: a stack array
	// passed through the io.Reader interface escapes, costing one heap
	// allocation per frame on an otherwise allocation-free path.
	hdr, err := br.Peek(4)
	if err != nil {
		return 0, 0, buf, err
	}
	ln := binary.LittleEndian.Uint32(hdr)
	br.Discard(4)
	if ln > maxFrameBody+8 {
		return 0, 0, buf, fmt.Errorf("dist: frame body of %d bytes exceeds limit", ln)
	}
	if ln < 10 {
		return 0, 0, buf, fmt.Errorf("dist: v8 frame of %d bytes is shorter than its trailer", ln)
	}
	body := buf
	if uint32(cap(body)) < ln {
		body = make([]byte, ln)
	} else {
		body = body[:ln]
	}
	if _, err := io.ReadFull(br, body); err != nil {
		return 0, 0, body, err
	}
	if got, want := binary.LittleEndian.Uint32(body[ln-4:]), crc32.Checksum(body[:ln-4], castagnoli); got != want {
		return 0, 0, body, fmt.Errorf("dist: frame CRC mismatch (got %#x, want %#x)", got, want)
	}
	seq := binary.LittleEndian.Uint32(body[ln-8 : ln-4])
	if err := parseFrame(body[:ln-8], f); err != nil {
		return 0, 0, body, err
	}
	return seq, int(4 + ln), body, nil
}

// mintSessionID tags a fresh session id with the rank it serves, so a
// collision across ranks is impossible and logs are attributable.
func mintSessionID(rank int) uint64 {
	return uint64(rank)<<48 | uint64(rand.Int63())&(1<<48-1)
}

// session states.
const (
	sessLive      = iota // traffic flows on the current connIO
	sessSuspended        // physical link lost; inside the grace window
	sessBroken           // grace expired or resume refused: death path
)

type sessEntry struct {
	seq uint64
	buf *frameBuf
}

// session is the resumable-link state shared by one wconn's sender and
// reader. Lock order: the owning wconn's wmu strictly before sess.mu.
type session struct {
	id    uint64
	grace time.Duration
	// rank is the local rank stamped on outgoing kResume frames.
	rank int
	// redial reconnects from the dialing side; nil on the accepting
	// side, whose reader parks until the peer's resume arrives.
	redial func() (net.Conn, error)

	mu       sync.Mutex
	cond     *sync.Cond
	state    int
	susEpoch uint64 // one grace timer per live→suspended transition
	deadline time.Time
	log      []sessEntry
	logBytes int
}

func newSession(id uint64, grace time.Duration) *session {
	s := &session{id: id, grace: grace}
	s.cond = sync.NewCond(&s.mu)
	return s
}

func (s *session) isSuspended() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state == sessSuspended
}

func (s *session) isBroken() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state == sessBroken
}

// suspend moves a live session to suspended, arming the grace timer
// that breaks it if no resume lands in time. Idempotent.
func (s *session) suspend() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.suspendLocked()
}

func (s *session) suspendLocked() {
	if s.state != sessLive {
		return
	}
	s.state = sessSuspended
	s.susEpoch++
	s.deadline = time.Now().Add(s.grace)
	epoch := s.susEpoch
	time.AfterFunc(s.grace, func() {
		s.mu.Lock()
		if s.state == sessSuspended && s.susEpoch == epoch {
			s.state = sessBroken
			s.cond.Broadcast()
		}
		s.mu.Unlock()
	})
}

// breakSess collapses the session for good, releasing a parked reader
// and recycling the retransmit log (nothing can ever replay it).
func (s *session) breakSess() {
	s.mu.Lock()
	s.state = sessBroken
	for i := range s.log {
		s.log[i].buf.release()
		s.log[i].buf = nil
	}
	s.log = nil
	s.logBytes = 0
	s.cond.Broadcast()
	s.mu.Unlock()
}

// appendLog records an encoded frame (trailer included, clean of any
// fault-plan mutation) for retransmission, trimming the oldest entries
// past the byte budget. The caller holds the owning wconn's wmu, so
// entries arrive in sequence order. The copy lives in a pooled buffer,
// returned to the pool when the entry leaves the log.
func (s *session) appendLog(seq uint64, buf []byte) {
	cp := newFrameBuf(buf)
	s.mu.Lock()
	if s.state == sessBroken {
		// Nothing will ever replay a broken session's log; recycle now.
		s.mu.Unlock()
		cp.release()
		return
	}
	s.log = append(s.log, sessEntry{seq: seq, buf: cp})
	s.logBytes += len(cp.b)
	for s.logBytes > sessLogBudget && len(s.log) > 1 {
		s.logBytes -= len(s.log[0].buf.b)
		s.log[0].buf.release()
		s.log[0].buf = nil
		s.log = s.log[1:]
	}
	s.mu.Unlock()
}

// replayAfter rewrites every retained frame the peer has not seen. It
// fails when the log no longer reaches back to peerRecv+1: the missing
// frames are unrecoverable and the session cannot resume.
func (s *session) replayAfter(w io.Writer, peerRecv, sendSeq uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if sendSeq > peerRecv {
		if want := peerRecv + 1; len(s.log) == 0 || s.log[0].seq > want {
			return fmt.Errorf("dist: session %#x retransmit log trimmed past frame %d", s.id, want)
		}
	}
	for i := range s.log {
		if s.log[i].seq <= peerRecv {
			continue
		}
		if _, err := w.Write(s.log[i].buf.b); err != nil {
			return err
		}
	}
	return nil
}

// trimThrough drops log entries the peer has confirmed receiving,
// returning their buffers to the frame pool.
func (s *session) trimThrough(peerRecv uint64) {
	s.mu.Lock()
	for len(s.log) > 0 && s.log[0].seq <= peerRecv {
		s.logBytes -= len(s.log[0].buf.b)
		s.log[0].buf.release()
		s.log[0].buf = nil
		s.log = s.log[1:]
	}
	s.mu.Unlock()
}

// await is the reader goroutine's reaction to a read failure on io:
// keep the logical link alive for the grace window. On the dialing
// side it drives reconnection; on the accepting side it parks until
// the peer's resume (or the grace timer) resolves the suspension. It
// reports whether the session is live again on a fresh connection.
func (cn *wconn) await(failed *connIO) bool {
	s := cn.sess
	if s == nil || cn.dead.Load() {
		return false
	}
	s.mu.Lock()
	if s.state == sessLive && cn.cur.Load() != failed {
		// Resumed while this reader was failing out of the old
		// connection: continue on the new one.
		s.mu.Unlock()
		return true
	}
	if s.state == sessBroken {
		s.mu.Unlock()
		return false
	}
	s.suspendLocked()
	deadline := s.deadline
	if s.redial == nil {
		for s.state == sessSuspended {
			s.cond.Wait()
		}
		ok := s.state == sessLive
		s.mu.Unlock()
		return ok
	}
	s.mu.Unlock()
	return cn.redialResume(deadline)
}

// redialResume reconnects and replays until the session resumes or the
// grace deadline passes. Runs on the reader goroutine, dialing side
// only. A fault-plan partition gates the attempts: resuming across a
// severed link must wait for the heal, exactly like a real network.
func (cn *wconn) redialResume(deadline time.Time) bool {
	s := cn.sess
	for time.Now().Before(deadline) {
		if cn.dead.Load() || s.isBroken() {
			return false
		}
		if cn.plan != nil && cn.plan.Severed(cn.fFrom, cn.fTo) {
			time.Sleep(5 * time.Millisecond)
			continue
		}
		c, err := s.redial()
		if err != nil {
			time.Sleep(10 * time.Millisecond)
			continue
		}
		ok, fatal := cn.tryResume(c)
		if ok {
			return true
		}
		if fatal {
			break
		}
	}
	s.breakSess()
	return false
}

// tryResume runs the dialing half of one resume handshake over a fresh
// connection: offer our receive high-water mark, learn the peer's,
// retransmit what it missed, and install the connection. fatal reports
// a refusal that no retry can fix (kReject, or a trimmed log).
func (cn *wconn) tryResume(c net.Conn) (ok, fatal bool) {
	s := cn.sess
	nio := newConnIO(c)
	c.SetDeadline(time.Now().Add(resumeTimeout))
	req := &frame{Kind: kResume, From: s.rank, Seq: s.id, Obj: int64(cn.recvSeq.Load())}
	if _, err := c.Write(encodeFrame(make([]byte, 0, 64), req, 0)); err != nil {
		c.Close()
		return false, false
	}
	var rep frame
	if _, _, err := readRawFrame(nio.br, &rep); err != nil {
		c.Close()
		return false, false
	}
	if rep.Kind == kReject {
		c.Close()
		return false, true
	}
	if rep.Kind != kResume || rep.Seq != s.id {
		c.Close()
		return false, false
	}
	c.SetDeadline(time.Time{})
	peerRecv := uint64(rep.Obj)
	cn.wmu.Lock()
	defer cn.wmu.Unlock()
	if err := s.replayAfter(c, peerRecv, cn.sendSeq); err != nil {
		c.Close()
		return false, true
	}
	s.trimThrough(peerRecv)
	cn.cur.Store(nio)
	s.mu.Lock()
	s.state = sessLive
	s.cond.Broadcast()
	s.mu.Unlock()
	if cn.ctr != nil {
		cn.ctr.resumes.Add(1)
	}
	return true, false
}

// sessRegistry maps live session ids to their connections on the
// accepting side of a deployment (the hub's registration listener, a
// mesh worker's peer listener, a promoted hub's adoption listener).
type sessRegistry struct {
	mu sync.Mutex
	m  map[uint64]*wconn
}

func newSessRegistry() *sessRegistry { return &sessRegistry{m: make(map[uint64]*wconn)} }

func (r *sessRegistry) add(id uint64, cn *wconn) {
	if r == nil || id == 0 {
		return
	}
	r.mu.Lock()
	r.m[id] = cn
	r.mu.Unlock()
}

func (r *sessRegistry) lookup(id uint64) *wconn {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.m[id]
}

// acceptResumes serves the post-registration life of an accepting
// listener: every later connection is a resume attempt for a
// registered session; anything else is turned away.
func acceptResumes(ln net.Listener, reg *sessRegistry, closed *atomic.Bool) {
	for {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		if closed != nil && closed.Load() {
			c.Close()
			return
		}
		go handleResume(c, reg)
	}
}

// handleResume runs the accepting half of one resume handshake: learn
// the dialer's receive high-water mark, answer with ours, retransmit
// what it missed, install the connection, and kick the reader off the
// dead one (a half-open read would otherwise park forever).
func handleResume(c net.Conn, reg *sessRegistry) {
	c.SetDeadline(time.Now().Add(resumeTimeout))
	nio := newConnIO(c)
	var req frame
	if _, _, err := readRawFrame(nio.br, &req); err != nil || req.Kind != kResume {
		c.Close()
		return
	}
	cn := reg.lookup(req.Seq)
	if cn == nil || cn.dead.Load() || cn.sess == nil || cn.sess.isBroken() {
		c.Write(encodeFrame(nil, &frame{Kind: kReject, Seq: req.Seq, Blob: []byte("unknown or expired session")}, 0))
		c.Close()
		return
	}
	s := cn.sess
	cn.wmu.Lock()
	defer cn.wmu.Unlock()
	if s.isBroken() || cn.dead.Load() {
		c.Write(encodeFrame(nil, &frame{Kind: kReject, Seq: req.Seq, Blob: []byte("session expired")}, 0))
		c.Close()
		return
	}
	old := cn.cur.Load()
	rep := &frame{Kind: kResume, From: s.rank, Seq: s.id, Obj: int64(cn.recvSeq.Load())}
	if _, err := c.Write(encodeFrame(make([]byte, 0, 64), rep, 0)); err != nil {
		c.Close()
		return
	}
	if err := s.replayAfter(c, uint64(req.Obj), cn.sendSeq); err != nil {
		c.Close()
		s.breakSess()
		return
	}
	s.trimThrough(uint64(req.Obj))
	c.SetDeadline(time.Time{})
	cn.cur.Store(nio)
	if old != nil && old != nio {
		old.c.Close()
	}
	s.mu.Lock()
	s.state = sessLive
	s.cond.Broadcast()
	s.mu.Unlock()
	if cn.ctr != nil {
		cn.ctr.resumes.Add(1)
	}
}

var errLinkSevered = errors.New("dist: link severed by fault plan")
